//! Bayes-optimal remapping — the utility post-processor of Chatzikokolakis,
//! ElSalamouny & Palamidessi (PoPETS 2017), reference \[5\] of the paper.
//!
//! Any deterministic function of a GeoInd mechanism's output is free: by
//! the data-processing inequality it cannot weaken the guarantee. The
//! *optimal* such function replaces each reported location `z` by the point
//! minimizing the posterior-expected quality loss,
//!
//! ```text
//! remap(z) = argmin_ẑ Σ_x P(x | z) · d_Q(x, ẑ)
//! ```
//!
//! computed from the mechanism's channel and a prior. For the squared
//! Euclidean metric the minimizer is the posterior mean (computed in closed
//! form); for the Euclidean metric it is the geometric median, approximated
//! here over the candidate input locations (the standard discrete variant).
//!
//! Remapping recovers a surprising amount of the utility PL throws away —
//! quantified by the `abl-remap` experiment.

use crate::adversary::BayesianAdversary;
use crate::channel::Channel;
use crate::metrics::QualityMetric;
use crate::{Mechanism, MechanismError};
use geoind_rng::Rng;
use geoind_spatial::geom::Point;
use geoind_spatial::kdtree::KdTree;

/// A channel-based mechanism whose outputs are replaced by their
/// Bayes-optimal estimates under a prior.
#[derive(Debug)]
pub struct RemappedMechanism<M: Mechanism> {
    inner: M,
    /// Maps each channel output index to its remapped location.
    table: Vec<Point>,
    /// Locates the inner mechanism's raw output among the channel outputs.
    output_index: KdTree,
}

impl<M: Mechanism> RemappedMechanism<M> {
    /// Wrap `inner`, whose behaviour is described by `channel`, remapping
    /// under `prior` (over the channel's inputs) and `metric`.
    ///
    /// The caller guarantees `channel` matches `inner` (for
    /// [`crate::opt::OptimalMechanism`] use its own channel; for a
    /// grid-remapped planar Laplace use [`empirical_channel`]).
    ///
    /// # Errors
    /// [`MechanismError::BadParameter`] when the prior length mismatches
    /// the channel or some output has zero marginal probability (no
    /// posterior exists to remap it).
    pub fn new(
        inner: M,
        channel: &Channel,
        prior: Vec<f64>,
        metric: QualityMetric,
    ) -> Result<Self, MechanismError> {
        if prior.len() != channel.num_inputs() {
            return Err(MechanismError::BadParameter(format!(
                "prior length {} != channel inputs {}",
                prior.len(),
                channel.num_inputs()
            )));
        }
        let adversary = BayesianAdversary::new(prior);
        let mut table = Vec::with_capacity(channel.num_outputs());
        for z in 0..channel.num_outputs() {
            match best_estimate(&adversary, channel, z, metric) {
                Some(p) => table.push(p),
                None => {
                    return Err(MechanismError::BadParameter(format!(
                        "output {z} has zero marginal probability under the prior"
                    )))
                }
            }
        }
        let output_index = KdTree::build(
            channel
                .outputs()
                .iter()
                .copied()
                .enumerate()
                .map(|(i, p)| (p, i)),
        );
        Ok(Self {
            inner,
            table,
            output_index,
        })
    }

    /// The remap table (output index → estimate).
    pub fn table(&self) -> &[Point] {
        &self.table
    }

    /// The wrapped mechanism.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

/// Posterior-optimal estimate for output `z`: closed-form posterior mean
/// for `d²`, discrete geometric-median approximation for `d`.
fn best_estimate(
    adversary: &BayesianAdversary,
    channel: &Channel,
    z: usize,
    metric: QualityMetric,
) -> Option<Point> {
    match metric {
        QualityMetric::SqEuclidean => {
            let post = adversary.posterior(channel, z)?;
            let (mut mx, mut my) = (0.0, 0.0);
            for (p, loc) in post.iter().zip(channel.inputs()) {
                mx += p * loc.x;
                my += p * loc.y;
            }
            Some(Point::new(mx, my))
        }
        QualityMetric::Euclidean => adversary.optimal_guess(channel, z, metric),
    }
}

impl<M: Mechanism> Mechanism for RemappedMechanism<M> {
    fn report<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> Point {
        let raw = self.inner.report(x, rng);
        let (_, idx, _) = self
            .output_index
            .nearest(raw)
            .expect("non-empty output set");
        self.table[idx]
    }

    fn name(&self) -> String {
        format!("remap({})", self.inner.name())
    }
}

/// Estimate the channel of an arbitrary mechanism over discrete logical
/// locations by Monte-Carlo: run `samples` reports from every input and
/// histogram the outputs (snapped to the nearest output location).
///
/// Used to remap mechanisms without an analytic channel (e.g. planar
/// Laplace restricted to a grid).
pub fn empirical_channel<M: Mechanism, R: Rng + ?Sized>(
    mechanism: &M,
    inputs: &[Point],
    outputs: &[Point],
    samples: usize,
    rng: &mut R,
) -> Channel {
    assert!(samples > 0, "need at least one sample per input");
    assert!(!inputs.is_empty() && !outputs.is_empty());
    let snap = KdTree::build(outputs.iter().copied().enumerate().map(|(i, p)| (p, i)));
    let m = outputs.len();
    let mut probs = vec![0.0f64; inputs.len() * m];
    for (xi, &x) in inputs.iter().enumerate() {
        for _ in 0..samples {
            let z = mechanism.report(x, rng);
            let (_, idx, _) = snap.nearest(z).expect("non-empty outputs");
            probs[xi * m + idx] += 1.0;
        }
        for v in &mut probs[xi * m..(xi + 1) * m] {
            *v /= samples as f64;
        }
    }
    Channel::new(inputs.to_vec(), outputs.to_vec(), probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::OptimalMechanism;
    use crate::planar_laplace::PlanarLaplace;
    use geoind_data::prior::GridPrior;
    use geoind_rng::SeededRng;
    use geoind_spatial::geom::BBox;
    use geoind_spatial::grid::Grid;

    #[test]
    fn posterior_mean_for_squared_metric() {
        // Symmetric two-point channel, uniform prior: remap of each output
        // is pulled toward the middle by the flip probability.
        let pts = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        let stay = 0.8;
        let ch = Channel::new(pts.clone(), pts, vec![stay, 0.2, 0.2, stay]);
        let adv = BayesianAdversary::new(vec![0.5, 0.5]);
        let est = best_estimate(&adv, &ch, 0, QualityMetric::SqEuclidean).unwrap();
        // Posterior after z=0: (0.8, 0.2) -> mean x = 0.4.
        assert!((est.x - 0.4).abs() < 1e-12);
        assert_eq!(est.y, 0.0);
    }

    #[test]
    fn remap_improves_pl_grid_utility() {
        let domain = BBox::square(20.0);
        let g = 5u32;
        let grid = Grid::new(domain, g);
        // Skewed prior.
        let mut weights = vec![0.2; grid.num_cells()];
        weights[12] = 10.0;
        weights[7] = 5.0;
        let prior = GridPrior::from_weights(grid.clone(), weights);
        let eps = 0.25;
        let pl = PlanarLaplace::new(eps).with_grid_remap(grid.clone());

        let mut rng = SeededRng::from_seed(5);
        let centers = grid.centers();
        let channel = empirical_channel(&pl, &centers, &centers, 4_000, &mut rng);
        let remapped = RemappedMechanism::new(
            PlanarLaplace::new(eps).with_grid_remap(grid.clone()),
            &channel,
            prior.probs().to_vec(),
            QualityMetric::SqEuclidean,
        )
        .unwrap();

        // Compare prior-weighted expected losses by Monte-Carlo.
        let mut loss_raw = 0.0;
        let mut loss_remap = 0.0;
        let trials = 2_000;
        for (cell, &p) in prior.probs().iter().enumerate() {
            let x = grid.center_of(cell);
            let (mut a, mut b) = (0.0, 0.0);
            for _ in 0..trials {
                a += x.dist2(pl.report(x, &mut rng));
                b += x.dist2(remapped.report(x, &mut rng));
            }
            loss_raw += p * a / trials as f64;
            loss_remap += p * b / trials as f64;
        }
        assert!(
            loss_remap < loss_raw * 0.95,
            "remap should improve utility: {loss_remap} vs {loss_raw}"
        );
    }

    #[test]
    fn remapping_opt_never_helps_much() {
        // OPT is already optimal for its prior/metric over the discrete
        // set; remapping onto the same candidate set cannot beat it by more
        // than numerical noise.
        let domain = BBox::square(12.0);
        let grid = Grid::new(domain, 3);
        let prior = GridPrior::uniform(domain, 3);
        let eps = 0.5;
        let opt = OptimalMechanism::on_grid(eps, &grid, &prior, QualityMetric::Euclidean).unwrap();
        let channel = opt.channel().clone();
        let remapped = RemappedMechanism::new(
            OptimalMechanism::on_grid(eps, &grid, &prior, QualityMetric::Euclidean).unwrap(),
            &channel,
            prior.probs().to_vec(),
            QualityMetric::Euclidean,
        )
        .unwrap();
        let mut rng = SeededRng::from_seed(6);
        let (mut a, mut b) = (0.0, 0.0);
        let trials = 30_000;
        for cell in 0..grid.num_cells() {
            let x = grid.center_of(cell);
            for _ in 0..trials / grid.num_cells() {
                a += x.dist(opt.report(x, &mut rng));
                b += x.dist(remapped.report(x, &mut rng));
            }
        }
        assert!(
            b >= a * 0.97,
            "remap 'improved' OPT suspiciously: {b} vs {a}"
        );
    }

    #[test]
    fn empirical_channel_rows_are_stochastic() {
        let pl = PlanarLaplace::new(1.0);
        let pts = Grid::new(BBox::square(10.0), 3).centers();
        let mut rng = SeededRng::from_seed(7);
        let ch = empirical_channel(&pl, &pts, &pts, 500, &mut rng);
        for x in 0..pts.len() {
            assert!((ch.row(x).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn prior_mismatch_rejected() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let ch = Channel::new(pts.clone(), pts, vec![0.9, 0.1, 0.1, 0.9]);
        let res = RemappedMechanism::new(
            PlanarLaplace::new(1.0),
            &ch,
            vec![1.0],
            QualityMetric::Euclidean,
        );
        assert!(matches!(res, Err(MechanismError::BadParameter(_))));
    }
}
