//! Flattened alias-table sampling for admitted channels.
//!
//! A [`crate::channel::Channel`] fresh out of the LP answers `sample` with
//! a per-row Walker alias draw, but the rows live in per-row allocations
//! and the table is rebuilt eagerly even for channels that are never
//! served. [`FlatChannel`] is the serving-path layout: one contiguous
//! row-major `(prob, alias)` pair for the whole channel, built **once at
//! the admission gate** — after certification, so the table can only ever
//! encode rows a [`crate::certify::Certificate`] vouches for. The MSM
//! descent fuses the per-level tables of a whole hierarchy into a single
//! walk over these arrays (see `crate::msm`), which is what makes a served
//! request cost nanoseconds instead of a cache fetch per level.
//!
//! Construction replicates [`AliasTable::new`] bit-for-bit per row (it
//! literally runs it and copies the slots out), so sampling from a
//! `FlatChannel` consumes the same randomness and returns the same
//! categories as the per-row tables it replaces — the determinism suite
//! pins this against goldens recorded before the flattening existed.
//!
//! A failed build is not a panic: `build` returns `None` (exercised
//! through the `sample.alias.build` failpoint) and the channel keeps
//! serving through the one-uniform inverse-CDF scan
//! ([`crate::channel::Channel::sample_cdf`]).

use geoind_math::sampling::AliasTable;
use geoind_rng::Rng;
use geoind_testkit::failpoint;

/// Contiguous row-major alias tables for an `rows × m` stochastic matrix.
#[derive(Debug, Clone)]
pub struct FlatChannel {
    rows: usize,
    m: usize,
    /// Acceptance probability of slot `i` of row `r` at `r * m + i`.
    prob: Vec<f64>,
    /// Alias category of slot `i` of row `r` at `r * m + i`.
    alias: Vec<u32>,
}

impl FlatChannel {
    /// Build the flattened tables for a row-major `rows × m` matrix of
    /// (already normalized) row distributions.
    ///
    /// Returns `None` instead of panicking when a row cannot back an alias
    /// table (non-finite or negative mass, or a row summing to zero) or
    /// when the `sample.alias.build` failpoint is armed — the caller keeps
    /// the inverse-CDF path in both cases.
    pub fn build(probs: &[f64], rows: usize, m: usize) -> Option<FlatChannel> {
        if failpoint::hit("sample.alias.build") {
            return None;
        }
        if rows == 0 || m == 0 || probs.len() != rows * m {
            return None;
        }
        let mut prob = Vec::with_capacity(rows * m);
        let mut alias = Vec::with_capacity(rows * m);
        for r in 0..rows {
            let row = &probs[r * m..(r + 1) * m];
            let mut total = 0.0;
            for &w in row {
                if !(w >= 0.0 && w.is_finite()) {
                    return None;
                }
                total += w;
            }
            if total <= 0.0 {
                return None;
            }
            // Reuse the canonical Vose construction so the flattened slots
            // are bit-identical to a per-row AliasTable over the same row.
            let table = AliasTable::new(row);
            prob.extend_from_slice(table.slot_probs());
            alias.extend_from_slice(table.aliases());
        }
        Some(FlatChannel {
            rows,
            m,
            prob,
            alias,
        })
    }

    /// Number of rows (channel inputs).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of categories per row (channel outputs).
    pub fn outputs(&self) -> usize {
        self.m
    }

    /// Draw one category from row `row`: one uniform slot, one biased
    /// coin — the exact draw order of [`AliasTable::sample`].
    ///
    /// # Panics
    /// Panics if `row >= self.rows()`.
    #[inline]
    pub fn sample_row<R: Rng + ?Sized>(&self, row: usize, rng: &mut R) -> usize {
        assert!(row < self.rows, "row {row} out of range");
        let base = row * self.m;
        let i = rng.gen_range(0..self.m);
        if rng.gen_f64() < self.prob[base + i] {
            i
        } else {
            self.alias[base + i] as usize
        }
    }

    /// The exact distribution row `row` samples from: slot `i` lands on
    /// category `i` with probability `prob[i]/m` and on its alias with the
    /// complement. Used by the equivalence suite to compare the table
    /// against the certified channel row without drawing a single sample.
    ///
    /// # Panics
    /// Panics if `row >= self.rows()`.
    pub fn row_marginal(&self, row: usize) -> Vec<f64> {
        assert!(row < self.rows, "row {row} out of range");
        let base = row * self.m;
        let mut out = vec![0.0f64; self.m];
        let inv_m = 1.0 / self.m as f64;
        for i in 0..self.m {
            let p = self.prob[base + i];
            out[i] += p * inv_m;
            out[self.alias[base + i] as usize] += (1.0 - p) * inv_m;
        }
        out
    }

    /// One row's acceptance slots (for fused-tree assembly).
    pub(crate) fn row_slots(&self, row: usize) -> (&[f64], &[u32]) {
        let base = row * self.m;
        (
            &self.prob[base..base + self.m],
            &self.alias[base..base + self.m],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoind_rng::SeededRng;
    use geoind_testkit::failpoint::{FailSpec, Session};

    #[test]
    fn flat_rows_match_per_row_alias_tables_bitwise() {
        let probs = [
            0.1, 0.4, 0.15, 0.05, 0.3, //
            0.2, 0.2, 0.2, 0.2, 0.2, //
            1.0, 0.0, 0.0, 0.0, 0.0,
        ];
        let flat = FlatChannel::build(&probs, 3, 5).expect("valid rows");
        for r in 0..3 {
            let reference = AliasTable::new(&probs[r * 5..(r + 1) * 5]);
            let (p, a) = flat.row_slots(r);
            for i in 0..5 {
                assert_eq!(p[i].to_bits(), reference.slot_probs()[i].to_bits());
                assert_eq!(a[i], reference.aliases()[i]);
            }
        }
    }

    #[test]
    fn sample_row_consumes_the_alias_draw_order() {
        let probs = [0.7, 0.3, 0.25, 0.75];
        let flat = FlatChannel::build(&probs, 2, 2).expect("valid rows");
        let reference = AliasTable::new(&probs[2..4]);
        let mut a = SeededRng::from_seed(0xF1A7);
        let mut b = SeededRng::from_seed(0xF1A7);
        for _ in 0..5_000 {
            assert_eq!(flat.sample_row(1, &mut a), reference.sample(&mut b));
        }
    }

    #[test]
    fn row_marginal_reconstructs_input() {
        let probs = [0.05, 0.55, 0.4, 0.9, 0.1, 0.0];
        let flat = FlatChannel::build(&probs, 2, 3).expect("valid rows");
        for r in 0..2 {
            for (z, m) in flat.row_marginal(r).iter().enumerate() {
                assert!((m - probs[r * 3 + z]).abs() <= 8.0 * f64::EPSILON);
            }
        }
    }

    #[test]
    fn invalid_rows_refuse_instead_of_panicking() {
        assert!(FlatChannel::build(&[0.5, f64::NAN], 1, 2).is_none());
        assert!(FlatChannel::build(&[-0.1, 1.1], 1, 2).is_none());
        assert!(FlatChannel::build(&[0.0, 0.0], 1, 2).is_none());
        assert!(FlatChannel::build(&[0.5, 0.5], 2, 2).is_none()); // shape
        assert!(FlatChannel::build(&[], 0, 0).is_none());
    }

    #[test]
    fn armed_failpoint_degrades_build_to_none() {
        let mut fp = Session::new();
        fp.arm("sample.alias.build", FailSpec::times(1));
        assert!(FlatChannel::build(&[0.5, 0.5], 1, 2).is_none());
        // The next build (failpoint exhausted) succeeds.
        assert!(FlatChannel::build(&[0.5, 0.5], 1, 2).is_some());
    }
}
