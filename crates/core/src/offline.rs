//! Offline precomputation and persistence of MSM's per-node channels.
//!
//! Section 3.1 of the paper: the mobile device "will also download in
//! advance (offline) a set of objects that are required to support our
//! technique … the amount of data that needs to be downloaded offline is
//! small (in the order of tens of megabytes)". Those objects are exactly
//! the per-node optimal channels; this module implements the flow:
//!
//! 1. a provisioning service calls [`MsmMechanism::precompute`] to solve
//!    every per-node LP eagerly,
//! 2. serializes the channel cache with [`MsmMechanism::export_cache`]
//!    (a small self-describing little-endian binary format),
//! 3. the device calls [`MsmMechanism::import_cache`] and answers every
//!    query without ever touching the LP solver.
//!
//! ## Cache format (version 2)
//!
//! Everything little-endian:
//!
//! ```text
//! magic        8 bytes  "GEOINDCH"
//! version      u32      2
//! count        u64      number of entries
//! header_sum   u64      FNV-1a 64 over the version+count bytes
//! entry × count:
//!   payload_len  u64    length of the payload in bytes
//!   n, m         u64×2  channel shape (inputs × outputs)
//!   payload_sum  u64    FNV-1a 64 over the payload bytes
//!   entry_sum    u64    FNV-1a 64 over the 32 entry-header bytes above
//!   payload      payload_len bytes (level, id, n, m, points, probs)
//! ```
//!
//! The per-section checksums mean a truncated, bit-flipped, or
//! version-bumped blob is rejected with a clean
//! [`MechanismError::CacheCorrupt`] naming the failing section — it can
//! never be admitted as a garbage channel. The entry header (including
//! `payload_len`) is checksum-verified and cross-checked **before any
//! allocation**: `n` and `m` must equal this index's fan-out `g²` and
//! `payload_len` must equal the exact size those shapes imply, so a
//! corrupted or malicious length can neither trigger a huge allocation
//! nor mis-frame the rest of the stream. Version-1 blobs (magic
//! `GEOIND01`, no checksums) are detected and refused explicitly.
//!
//! Checksums only detect *corruption*. A payload forged with valid
//! FNV-1a sums — or produced by a buggy provisioner — could still encode
//! an ε-violating channel, so every structurally valid entry is also
//! **certified on load** against its level budget ([`crate::certify`]).
//! Entries that fail are *quarantined individually*: the rest of the
//! blob imports, the quarantined node falls back to a fresh (gated)
//! solve on demand, and the quarantine list is surfaced in the returned
//! [`CacheImportReport`]. Repair is deliberately not attempted here —
//! repairing a forged payload would launder it into service.

use crate::certify::{self, Certificate, Verdict};
use crate::channel::Channel;
use crate::msm::MsmMechanism;
use crate::MechanismError;
use geoind_lp::simplex::Basis;
use geoind_spatial::geom::Point;
use geoind_spatial::hier::LevelCell;
use geoind_testkit::failpoint;
use geoind_testkit::pool::Pool;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Format magic (version 2 onward).
const MAGIC: &[u8; 8] = b"GEOINDCH";
/// Magic of the retired checksum-less version-1 format.
const MAGIC_V1: &[u8; 8] = b"GEOIND01";
/// Current format version.
const FORMAT_VERSION: u32 = 2;

/// FNV-1a 64-bit — tiny, dependency-free, and plenty for corruption
/// detection (this is an integrity check, not an authenticity check).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn corrupt(section: impl Into<String>, detail: impl Into<String>) -> MechanismError {
    MechanismError::CacheCorrupt {
        section: section.into(),
        detail: detail.into(),
    }
}

/// Outcome of a structurally valid [`MsmMechanism::import_cache`] run.
#[derive(Debug, Clone)]
pub struct CacheImportReport {
    /// Channels certified and committed to the cache.
    pub loaded: usize,
    /// Entries that parsed and checksummed cleanly but failed
    /// certification against their level budget — dropped, not served;
    /// the failing certificate explains how badly each violated.
    pub quarantined: Vec<(LevelCell, Certificate)>,
}

impl MsmMechanism {
    /// Eagerly solve the channels of every internal index node, breadth
    /// first, up to `max_nodes` (the full tree has
    /// `(g^{2h} − 1)/(g² − 1)` internal nodes). Returns how many channels
    /// the cache now holds. Equivalent to [`Self::precompute_jobs`] with
    /// one worker.
    ///
    /// # Errors
    /// Any [`MechanismError`] raised while building a per-node channel;
    /// channels built before the failure stay cached.
    pub fn precompute(&self, max_nodes: usize) -> Result<usize, MechanismError> {
        self.precompute_jobs(max_nodes, 1)
    }

    /// [`Self::precompute`] with the per-node LP solves of each level
    /// fanned out over `jobs` scoped worker threads.
    ///
    /// The schedule is deterministic and *jobs-independent*: the node set
    /// is the breadth-first prefix of the tree (each level in ascending
    /// cell order) capped at `max_nodes`, and within each level one
    /// canonical **donor** node — the missing node with the lowest cell
    /// index, never "whichever thread finished first" — is solved first.
    /// Its exit basis warm-starts every sibling solve on that level: the
    /// siblings' LPs share the donor's constraint matrix and costs (the
    /// prior only moves the right-hand side), so the dual simplex
    /// typically restores feasibility in a fraction of a cold solve's
    /// pivots. Each sibling's result is a pure function of its LP and the
    /// donor basis, so the cache contents — and the bytes
    /// [`Self::export_cache`] writes — are bit-identical at any `jobs`.
    ///
    /// Every fill runs through the same single-flight cache path as
    /// on-demand descents: the certify→repair→admit gate runs exactly
    /// once per channel, and failed solves are never cached.
    ///
    /// # Errors
    /// Any [`MechanismError`] raised while building a per-node channel
    /// (the first in breadth-first order when several workers fail);
    /// channels built before the failure stay cached.
    pub fn precompute_jobs(&self, max_nodes: usize, jobs: usize) -> Result<usize, MechanismError> {
        self.precompute_opts(max_nodes, jobs, true)
    }

    /// [`Self::precompute_jobs`] with warm starts optionally disabled
    /// (`warm_start: false` solves every node cold). The cold mode exists
    /// for the benchmark harness — it quantifies exactly what the donor
    /// basis saves — and for diagnosing a suspected warm-start miss;
    /// production callers want `precompute_jobs`.
    ///
    /// # Errors
    /// As [`Self::precompute_jobs`].
    pub fn precompute_opts(
        &self,
        max_nodes: usize,
        jobs: usize,
        warm_start: bool,
    ) -> Result<usize, MechanismError> {
        let pool = Pool::new(jobs);
        let mut budget = max_nodes;
        let mut level_nodes = vec![LevelCell::ROOT];
        while !level_nodes.is_empty() && budget > 0 {
            let take: Vec<LevelCell> = level_nodes.iter().copied().take(budget).collect();
            budget -= take.len();
            let missing: Vec<LevelCell> = take
                .iter()
                .copied()
                .filter(|c| self.cache_get(*c).is_none())
                .collect();
            if let Some(&donor) = missing.first() {
                // Canonical donor: the lowest-index missing node. Solved
                // cold (levels differ in ε and scale, so cross-level
                // bases rarely transfer), capturing its exit basis.
                //
                // The greedy spanner (seed rows under cut generation, the
                // whole target set under a spanner constraint set) is an
                // O(n³) build over child geometry that every node on a
                // level shares — build it once here, next to the donor
                // basis, and hand it to every fill on the level.
                let spanner = self.level_shared_spanner(donor);
                let mut donor_basis: Option<Basis> = None;
                let _ = self.cache_fill_warm(donor, None, spanner.as_ref(), &mut donor_basis)?;
                let siblings: Vec<LevelCell> = missing[1..].to_vec();
                let seed = if warm_start {
                    donor_basis.as_ref()
                } else {
                    None
                };
                let results = pool.map(siblings, |cell| {
                    self.cache_fill_warm(cell, seed, spanner.as_ref(), &mut None)
                        .map(|_| ())
                });
                // Surface the first failure in canonical node order;
                // successes published through the cache stay cached.
                if let Some(err) = results.into_iter().find_map(Result::err) {
                    return Err(err);
                }
            }
            level_nodes = next_internal_level(self, &level_nodes);
        }
        Ok(self.cached_channels())
    }

    /// Serialize the current channel cache. Returns the number of channels
    /// written.
    ///
    /// # Errors
    /// Propagates I/O failures from `w`.
    pub fn export_cache(&self, w: &mut impl Write) -> io::Result<usize> {
        let entries = self.cache_snapshot();
        w.write_all(MAGIC)?;
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        w.write_all(&header)?;
        w.write_all(&fnv1a64(&header).to_le_bytes())?;
        for (cell, channel) in &entries {
            let mut payload = Vec::new();
            write_u64(&mut payload, cell.level as u64)?;
            write_u64(&mut payload, cell.id as u64)?;
            write_u64(&mut payload, channel.num_inputs() as u64)?;
            write_u64(&mut payload, channel.num_outputs() as u64)?;
            for p in channel.inputs().iter().chain(channel.outputs()) {
                write_f64(&mut payload, p.x)?;
                write_f64(&mut payload, p.y)?;
            }
            for x in 0..channel.num_inputs() {
                for &v in channel.row(x) {
                    write_f64(&mut payload, v)?;
                }
            }
            let mut entry_header = Vec::with_capacity(32);
            entry_header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            entry_header.extend_from_slice(&(channel.num_inputs() as u64).to_le_bytes());
            entry_header.extend_from_slice(&(channel.num_outputs() as u64).to_le_bytes());
            entry_header.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
            w.write_all(&entry_header)?;
            write_u64(w, fnv1a64(&entry_header))?;
            w.write_all(&payload)?;
        }
        Ok(entries.len())
    }

    /// The exact payload size implied by an `n × m` entry: 4 `u64` fields
    /// plus `2(n+m)` coordinate `f64`s plus `n·m` probability `f64`s.
    fn expected_payload_len(n: u64, m: u64) -> u64 {
        32 + 16 * (n + m) + 8 * n * m
    }

    /// Load channels exported by [`MsmMechanism::export_cache`] into this
    /// mechanism's cache. Returns how many channels were committed plus
    /// any per-entry quarantines.
    ///
    /// The blob is validated in layers: magic, format version, header
    /// checksum, per-entry header checksum (which covers the payload
    /// length and shape, checked against this index's fan-out *before*
    /// the payload is allocated), per-entry payload checksum, each entry
    /// against this index's geometry (child count and centers), and
    /// finally **certification** of each entry's channel against its
    /// level budget. Structural failures are transactional — entries are
    /// staged and committed only after the whole blob validates, so a
    /// corrupt blob admits nothing. Certification failures quarantine
    /// only the offending entry (checksums passed, so the bytes arrived
    /// as written — the *content* is what is wrong): the rest of the blob
    /// still imports and the quarantined node is re-solved on demand
    /// through the regular admission gate.
    ///
    /// # Errors
    /// [`MechanismError::CacheCorrupt`] naming the failing section on any
    /// structural validation failure (including truncation and I/O
    /// errors).
    pub fn import_cache(&self, r: &mut impl Read) -> Result<CacheImportReport, MechanismError> {
        if failpoint::hit("cache.import.corrupt") {
            return Err(corrupt(
                "header",
                "injected corruption (failpoint cache.import.corrupt)",
            ));
        }
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)
            .map_err(|e| corrupt("header", format!("magic unreadable: {e}")))?;
        if &magic == MAGIC_V1 {
            return Err(corrupt(
                "header",
                "legacy version-1 cache (no checksums); re-export with this build",
            ));
        }
        if &magic != MAGIC {
            return Err(corrupt("header", "bad magic"));
        }
        let mut header = [0u8; 12];
        r.read_exact(&mut header)
            .map_err(|e| corrupt("header", format!("truncated: {e}")))?;
        let version = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        if version != FORMAT_VERSION {
            return Err(corrupt(
                "header",
                format!("unsupported format version {version} (expected {FORMAT_VERSION})"),
            ));
        }
        let count = u64::from_le_bytes(
            header[4..12]
                .try_into()
                .map_err(|_| corrupt("header", "count unreadable"))?,
        ) as usize;
        let declared_sum = read_u64(r).map_err(|e| corrupt("header", format!("checksum: {e}")))?;
        if declared_sum != fnv1a64(&header) {
            return Err(corrupt("header", "header checksum mismatch"));
        }
        if count > 4_000_000 {
            return Err(corrupt("header", "implausible entry count"));
        }
        // Every per-node channel of this index is g² × g²; anything else
        // cannot belong here, and rejecting it up front bounds the
        // allocation below to the exact entry size this index implies.
        let fan_out = u64::from(self.granularity()) * u64::from(self.granularity());
        let mut staged = Vec::with_capacity(count.min(4096));
        for i in 0..count {
            let section = format!("entry {i}");
            let mut entry_header = [0u8; 32];
            r.read_exact(&mut entry_header)
                .map_err(|e| corrupt(&section, format!("truncated entry header: {e}")))?;
            let declared_entry_sum =
                read_u64(r).map_err(|e| corrupt(&section, format!("header checksum: {e}")))?;
            // The header checksum covers the payload length, so a flipped
            // length bit is caught here, before it can size an allocation
            // or mis-frame the rest of the stream.
            if declared_entry_sum != fnv1a64(&entry_header) {
                return Err(corrupt(&section, "entry header checksum mismatch"));
            }
            let word = |j: usize| {
                u64::from_le_bytes(
                    entry_header[8 * j..8 * (j + 1)]
                        .try_into()
                        .expect("8-byte slice of a 32-byte array"),
                )
            };
            let (len, n, m, payload_sum) = (word(0), word(1), word(2), word(3));
            if n != fan_out || m != fan_out {
                return Err(corrupt(
                    &section,
                    format!("channel shape {n}x{m} does not match this index's {fan_out}x{fan_out} fan-out"),
                ));
            }
            if len != Self::expected_payload_len(n, m) {
                return Err(corrupt(
                    &section,
                    format!(
                        "payload length {len} inconsistent with shape {n}x{m} (expected {})",
                        Self::expected_payload_len(n, m)
                    ),
                ));
            }
            let mut payload = vec![0u8; len as usize];
            r.read_exact(&mut payload)
                .map_err(|e| corrupt(&section, format!("truncated payload: {e}")))?;
            if payload_sum != fnv1a64(&payload) {
                return Err(corrupt(&section, "payload checksum mismatch"));
            }
            let (cell, channel) = self.parse_entry(&payload, (n, m), &section)?;
            staged.push((cell, Arc::new(channel)));
        }
        // Certify-on-load: checksums prove the bytes, not the channel.
        // Certify each staged channel against its level budget; violators
        // are quarantined individually and never committed.
        let mut quarantined = Vec::new();
        let mut admitted = Vec::with_capacity(staged.len());
        for (cell, channel) in staged {
            let eps_entry = self.budgets().level(cell.level + 1);
            // Recheck tolerance, not the bare strict one: a bundle built
            // under a spanner constraint set was admitted with δ·(n−1)
            // chaining slack, and holding it to the full-set tolerance on
            // import would false-quarantine healthy channels.
            let tol = certify::recheck_tolerance(
                channel.num_inputs(),
                channel.num_outputs(),
                self.opt_options().constraints,
            );
            let cert = certify::certify(&channel, eps_entry, tol);
            if cert.verdict == Verdict::Quarantined {
                quarantined.push((cell, cert));
            } else {
                admitted.push((cell, channel, cert));
            }
        }
        let loaded = admitted.len();
        for (cell, channel, cert) in admitted {
            // Attach the fresh certificate so descents can trust (and
            // count) imported channels exactly like solver-admitted ones.
            let certified = Arc::new(Channel::clone(&channel).with_certificate(cert));
            self.cache_insert(cell, certified);
        }
        Ok(CacheImportReport {
            loaded,
            quarantined,
        })
    }

    /// Decode and geometry-validate one checksum-verified entry payload.
    /// `declared` is the `(n, m)` shape from the entry header — the
    /// payload's embedded shape must agree with it.
    fn parse_entry(
        &self,
        payload: &[u8],
        declared: (u64, u64),
        section: &str,
    ) -> Result<(LevelCell, Channel), MechanismError> {
        let mut r: &[u8] = payload;
        let fail = |detail: String| corrupt(section, detail);
        let level = read_u64(&mut r).map_err(|e| fail(format!("level field: {e}")))? as u32;
        let id = read_u64(&mut r).map_err(|e| fail(format!("id field: {e}")))? as usize;
        let n_raw = read_u64(&mut r).map_err(|e| fail(format!("shape field: {e}")))?;
        let m_raw = read_u64(&mut r).map_err(|e| fail(format!("shape field: {e}")))?;
        if (n_raw, m_raw) != declared {
            return Err(fail("payload shape disagrees with entry header".into()));
        }
        let (n, m) = (n_raw as usize, m_raw as usize);
        if n == 0 || m == 0 || n > 65_536 || m > 65_536 {
            return Err(fail("bad channel shape".into()));
        }
        let mut pts = Vec::with_capacity(n + m);
        for _ in 0..(n + m) {
            let x = read_f64(&mut r).map_err(|e| fail(format!("point data: {e}")))?;
            let y = read_f64(&mut r).map_err(|e| fail(format!("point data: {e}")))?;
            pts.push(Point::new(x, y));
        }
        let mut probs = Vec::with_capacity(n * m);
        for _ in 0..n * m {
            probs.push(read_f64(&mut r).map_err(|e| fail(format!("probability data: {e}")))?);
        }
        if !r.is_empty() {
            return Err(fail(format!("{} trailing bytes", r.len())));
        }
        if probs.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Err(fail("non-finite or negative probability".into()));
        }
        let cell = LevelCell { level, id };
        // Geometry validation against this index.
        if level + 1 > self.height() {
            return Err(fail("entry beyond index height".into()));
        }
        let expect: Vec<Point> = self
            .children_of(cell)
            .iter()
            .map(|c| self.center_of(*c))
            .collect();
        if expect.len() != n || n != m {
            return Err(fail("child count mismatch".into()));
        }
        for (a, b) in expect.iter().zip(&pts[..n]) {
            if a.dist(*b) > 1e-9 {
                return Err(fail("channel geometry does not match this index".into()));
            }
        }
        Ok((
            cell,
            Channel::new(pts[..n].to_vec(), pts[n..].to_vec(), probs),
        ))
    }
}

/// The internal nodes one level below `nodes`, in ascending cell order
/// (the canonical within-level schedule for the parallel precompute).
fn next_internal_level(msm: &MsmMechanism, nodes: &[LevelCell]) -> Vec<LevelCell> {
    let mut next = Vec::new();
    for &cell in nodes {
        if cell.level + 1 < msm.height() {
            next.extend(msm.children_of(cell));
        }
    }
    next.sort_by_key(|c| c.id);
    next
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocationStrategy;
    use geoind_data::prior::GridPrior;
    use geoind_spatial::geom::BBox;

    fn mechanism() -> MsmMechanism {
        let domain = BBox::square(8.0);
        let prior = GridPrior::uniform(domain, 8);
        MsmMechanism::builder(domain, prior)
            .epsilon(0.8)
            .granularity(2)
            .strategy(AllocationStrategy::FixedHeight(2))
            .build()
            .unwrap()
    }

    fn exported_blob() -> Vec<u8> {
        let provisioner = mechanism();
        provisioner.precompute(usize::MAX).unwrap();
        let mut blob = Vec::new();
        provisioner.export_cache(&mut blob).unwrap();
        blob
    }

    fn assert_corrupt(err: MechanismError) {
        assert!(
            matches!(err, MechanismError::CacheCorrupt { .. }),
            "expected CacheCorrupt, got {err:?}"
        );
    }

    #[test]
    fn precompute_fills_the_whole_tree() {
        let msm = mechanism();
        // g=2, h=2: internal nodes = root + 4 level-1 cells.
        let n = msm.precompute(usize::MAX).unwrap();
        assert_eq!(n, 5);
    }

    #[test]
    fn export_import_roundtrip_preserves_distributions() {
        let provisioner = mechanism();
        provisioner.precompute(usize::MAX).unwrap();
        let mut blob = Vec::new();
        let written = provisioner.export_cache(&mut blob).unwrap();
        assert_eq!(written, 5);
        assert!(!blob.is_empty());

        let device = mechanism();
        assert_eq!(device.cached_channels(), 0);
        let report = device.import_cache(&mut blob.as_slice()).unwrap();
        assert_eq!(report.loaded, 5);
        assert!(report.quarantined.is_empty(), "{:?}", report.quarantined);
        assert_eq!(device.cached_channels(), 5);

        // Identical exact output distributions without any further solving.
        let x = geoind_spatial::geom::Point::new(1.7, 6.1);
        let a = provisioner.exact_output_distribution(x);
        let b = device.exact_output_distribution(x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let device = mechanism();
        let mut blob: &[u8] = b"NOTMAGIC\x00\x00\x00\x00\x00\x00\x00\x00";
        assert_corrupt(device.import_cache(&mut blob).unwrap_err());
    }

    #[test]
    fn legacy_v1_magic_rejected_explicitly() {
        let device = mechanism();
        let mut blob: &[u8] = b"GEOIND01\x00\x00\x00\x00\x00\x00\x00\x00";
        let err = device.import_cache(&mut blob).unwrap_err();
        match err {
            MechanismError::CacheCorrupt { detail, .. } => {
                assert!(detail.contains("version-1"), "unhelpful detail: {detail}")
            }
            other => panic!("expected CacheCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_rejected_at_every_cut() {
        // Regression for the round-trip fragility: cut the blob at several
        // depths (header, mid-entry, mid-checksum) — every cut must yield a
        // clean CacheCorrupt, never a panic or a garbage channel.
        let blob = exported_blob();
        for keep in [4, 10, 19, blob.len() / 2, blob.len() - 3] {
            let device = mechanism();
            let cut = blob[..keep].to_vec();
            assert_corrupt(device.import_cache(&mut cut.as_slice()).unwrap_err());
            assert_eq!(
                device.cached_channels(),
                0,
                "cut at {keep} leaked a channel"
            );
        }
    }

    #[test]
    fn bit_flips_rejected_everywhere() {
        // Flip one bit at a sweep of positions across the blob; import must
        // reject every time (header sum, entry sum, or field validation).
        let blob = exported_blob();
        for pos in (0..blob.len()).step_by(37) {
            let mut bad = blob.clone();
            bad[pos] ^= 0x10;
            let device = mechanism();
            let res = device.import_cache(&mut bad.as_slice());
            assert!(res.is_err(), "bit flip at byte {pos} was accepted");
        }
    }

    #[test]
    fn version_bump_rejected() {
        let mut blob = exported_blob();
        // Version field sits right after the 8-byte magic.
        blob[8] = 3;
        let device = mechanism();
        let err = device.import_cache(&mut blob.as_slice()).unwrap_err();
        match err {
            MechanismError::CacheCorrupt { detail, .. } => assert!(
                detail.contains("version"),
                "version bump misreported: {detail}"
            ),
            other => panic!("expected CacheCorrupt, got {other:?}"),
        }
    }

    // Blob offsets: magic 8 + version/count header 12 + header sum 8 = 28,
    // then the first entry header [28..60] (len, n, m, payload_sum) and its
    // checksum [60..68].
    const ENTRY: usize = 28;

    #[test]
    fn forged_huge_length_rejected_before_allocation() {
        // Corruption that rewrites payload_len AND fixes up the entry
        // header checksum still cannot force an allocation: the length
        // must equal the exact size implied by the g²×g² shape. (If this
        // guard regressed, the import would attempt a 1 TiB allocation
        // and the test would die rather than fail.)
        let mut blob = exported_blob();
        blob[ENTRY..ENTRY + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let fixed = fnv1a64(&blob[ENTRY..ENTRY + 32]).to_le_bytes();
        blob[ENTRY + 32..ENTRY + 40].copy_from_slice(&fixed);
        let device = mechanism();
        let err = device.import_cache(&mut blob.as_slice()).unwrap_err();
        match err {
            MechanismError::CacheCorrupt { detail, .. } => assert!(
                detail.contains("length"),
                "forged length misreported: {detail}"
            ),
            other => panic!("expected CacheCorrupt, got {other:?}"),
        }
        assert_eq!(device.cached_channels(), 0);
    }

    #[test]
    fn forged_shape_rejected_before_allocation() {
        // Shape words that disagree with this index's fan-out are refused
        // even with a fixed-up entry header checksum — the maximal 65 536²
        // shape would otherwise license a ~34 GiB payload.
        let mut blob = exported_blob();
        blob[ENTRY + 8..ENTRY + 16].copy_from_slice(&65_536u64.to_le_bytes());
        blob[ENTRY + 16..ENTRY + 24].copy_from_slice(&65_536u64.to_le_bytes());
        let fixed = fnv1a64(&blob[ENTRY..ENTRY + 32]).to_le_bytes();
        blob[ENTRY + 32..ENTRY + 40].copy_from_slice(&fixed);
        let device = mechanism();
        let err = device.import_cache(&mut blob.as_slice()).unwrap_err();
        match err {
            MechanismError::CacheCorrupt { detail, .. } => assert!(
                detail.contains("fan-out"),
                "forged shape misreported: {detail}"
            ),
            other => panic!("expected CacheCorrupt, got {other:?}"),
        }
        assert_eq!(device.cached_channels(), 0);
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let blob = exported_blob();
        // A device with a different domain scale must refuse the blob.
        let domain = BBox::square(16.0);
        let other = MsmMechanism::builder(domain, GridPrior::uniform(domain, 8))
            .epsilon(0.8)
            .granularity(2)
            .strategy(AllocationStrategy::FixedHeight(2))
            .build()
            .unwrap();
        assert_corrupt(other.import_cache(&mut blob.as_slice()).unwrap_err());
    }

    #[test]
    fn precompute_respects_node_cap() {
        let msm = mechanism();
        let n = msm.precompute(2).unwrap();
        assert!(n <= 2, "cache holds {n}");
    }

    #[test]
    fn forged_epsilon_violating_entry_is_quarantined_not_served() {
        // The adversarial case certification exists for: an entry whose
        // bytes are intact (every FNV-1a checksum valid) but whose channel
        // violates the ε·d constraints. Rewrite the first entry's row 0 to
        // the deterministic distribution [1, 0, 0, 0] — rows still sum to
        // 1, the payload parses, and all checksums are fixed up — then
        // confirm import quarantines exactly that entry and serves nothing
        // from it.
        let mut blob = exported_blob();
        // First entry payload starts after its 40-byte header block at 68:
        // level@68, id@76, n@84, m@92, then 2(n+m)=16 coordinate f64s at
        // 100, then the 4×4 probability matrix at 228.
        const PROBS: usize = 228;
        let forged: [f64; 4] = [1.0, 0.0, 0.0, 0.0];
        for (k, v) in forged.iter().enumerate() {
            blob[PROBS + 8 * k..PROBS + 8 * (k + 1)].copy_from_slice(&v.to_le_bytes());
        }
        // Fix up the payload checksum (entry-header word 3) and then the
        // entry-header checksum over the rewritten header.
        let payload_len = u64::from_le_bytes(blob[ENTRY..ENTRY + 8].try_into().unwrap()) as usize;
        let payload_sum = fnv1a64(&blob[68..68 + payload_len]).to_le_bytes();
        blob[ENTRY + 24..ENTRY + 32].copy_from_slice(&payload_sum);
        let entry_sum = fnv1a64(&blob[ENTRY..ENTRY + 32]).to_le_bytes();
        blob[ENTRY + 32..ENTRY + 40].copy_from_slice(&entry_sum);

        let device = mechanism();
        let report = device.import_cache(&mut blob.as_slice()).unwrap();
        assert_eq!(report.loaded, 4, "the healthy entries still import");
        assert_eq!(report.quarantined.len(), 1);
        let (cell, cert) = &report.quarantined[0];
        assert_eq!(cert.verdict, Verdict::Quarantined);
        assert!(
            cert.max_violation > 1e-3,
            "a support mismatch is a gross violation, got {}",
            cert.max_violation
        );
        assert_eq!(device.cached_channels(), 4);
        // The quarantined node is absent from the cache; a query through it
        // triggers a fresh gated solve rather than serving the forgery.
        let rebuilt = device.try_channel_for(*cell).unwrap();
        assert!(rebuilt
            .certificate()
            .is_some_and(|c| c.verdict != Verdict::Quarantined));
        let eps_entry = device.budgets().level(cell.level + 1);
        assert!(rebuilt.satisfies_geoind(eps_entry, 1e-6));
    }

    #[test]
    fn imported_channels_carry_certificates() {
        let blob = exported_blob();
        let device = mechanism();
        device.import_cache(&mut blob.as_slice()).unwrap();
        for (_, cert) in device.recertify_cache() {
            assert_eq!(cert.verdict, Verdict::Certified);
        }
    }
}
