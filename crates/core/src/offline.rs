//! Offline precomputation and persistence of MSM's per-node channels.
//!
//! Section 3.1 of the paper: the mobile device "will also download in
//! advance (offline) a set of objects that are required to support our
//! technique … the amount of data that needs to be downloaded offline is
//! small (in the order of tens of megabytes)". Those objects are exactly
//! the per-node optimal channels; this module implements the flow:
//!
//! 1. a provisioning service calls [`MsmMechanism::precompute`] to solve
//!    every per-node LP eagerly,
//! 2. serializes the channel cache with [`MsmMechanism::export_cache`]
//!    (a small self-describing little-endian binary format),
//! 3. the device calls [`MsmMechanism::import_cache`] and answers every
//!    query without ever touching the LP solver.

use crate::channel::Channel;
use crate::msm::MsmMechanism;
use geoind_spatial::geom::Point;
use geoind_spatial::hier::LevelCell;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Format magic + version.
const MAGIC: &[u8; 8] = b"GEOIND01";

impl MsmMechanism {
    /// Eagerly solve the channels of every internal index node, breadth
    /// first, up to `max_nodes` (the full tree has
    /// `(g^{2h} − 1)/(g² − 1)` internal nodes). Returns how many channels
    /// the cache now holds.
    pub fn precompute(&self, max_nodes: usize) -> usize {
        let mut frontier = vec![LevelCell::ROOT];
        let mut visited = 0usize;
        while let Some(cell) = frontier.pop() {
            if visited >= max_nodes {
                break;
            }
            // channel_for caches internally.
            let _ = self.channel_for_offline(cell);
            visited += 1;
            if cell.level + 1 < self.height() {
                frontier.extend(self.children_of(cell));
            }
        }
        self.cached_channels()
    }

    /// Serialize the current channel cache. Returns the number of channels
    /// written.
    ///
    /// # Errors
    /// Propagates I/O failures from `w`.
    pub fn export_cache(&self, w: &mut impl Write) -> io::Result<usize> {
        let entries = self.cache_snapshot();
        w.write_all(MAGIC)?;
        write_u64(w, entries.len() as u64)?;
        for (cell, channel) in &entries {
            write_u64(w, cell.level as u64)?;
            write_u64(w, cell.id as u64)?;
            write_u64(w, channel.num_inputs() as u64)?;
            write_u64(w, channel.num_outputs() as u64)?;
            for p in channel.inputs().iter().chain(channel.outputs()) {
                write_f64(w, p.x)?;
                write_f64(w, p.y)?;
            }
            for x in 0..channel.num_inputs() {
                for &v in channel.row(x) {
                    write_f64(w, v)?;
                }
            }
        }
        Ok(entries.len())
    }

    /// Load channels exported by [`MsmMechanism::export_cache`] into this
    /// mechanism's cache. Returns the number of channels loaded.
    ///
    /// The file must come from a mechanism with the same structure: each
    /// entry is validated against this index's geometry (child count and
    /// centers) before being admitted.
    ///
    /// # Errors
    /// `InvalidData` on bad magic, malformed entries, or geometry mismatch.
    pub fn import_cache(&self, r: &mut impl Read) -> io::Result<usize> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let count = read_u64(r)? as usize;
        if count > 4_000_000 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "implausible entry count",
            ));
        }
        let mut loaded = 0usize;
        for _ in 0..count {
            let level = read_u64(r)? as u32;
            let id = read_u64(r)? as usize;
            let n = read_u64(r)? as usize;
            let m = read_u64(r)? as usize;
            if n == 0 || m == 0 || n > 65_536 || m > 65_536 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "bad channel shape",
                ));
            }
            let mut pts = Vec::with_capacity(n + m);
            for _ in 0..(n + m) {
                pts.push(Point::new(read_f64(r)?, read_f64(r)?));
            }
            let mut probs = Vec::with_capacity(n * m);
            for _ in 0..n * m {
                probs.push(read_f64(r)?);
            }
            let cell = LevelCell { level, id };
            // Geometry validation against this index.
            if level + 1 > self.height() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "entry beyond index height",
                ));
            }
            let expect: Vec<Point> = self
                .children_of(cell)
                .iter()
                .map(|c| self.center_of(*c))
                .collect();
            if expect.len() != n || n != m {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "child count mismatch",
                ));
            }
            for (a, b) in expect.iter().zip(&pts[..n]) {
                if a.dist(*b) > 1e-9 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "channel geometry does not match this index",
                    ));
                }
            }
            let channel = Channel::new(pts[..n].to_vec(), pts[n..].to_vec(), probs);
            self.cache_insert(cell, Arc::new(channel));
            loaded += 1;
        }
        Ok(loaded)
    }
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocationStrategy;
    use geoind_data::prior::GridPrior;
    use geoind_spatial::geom::BBox;

    fn mechanism() -> MsmMechanism {
        let domain = BBox::square(8.0);
        let prior = GridPrior::uniform(domain, 8);
        MsmMechanism::builder(domain, prior)
            .epsilon(0.8)
            .granularity(2)
            .strategy(AllocationStrategy::FixedHeight(2))
            .build()
            .unwrap()
    }

    #[test]
    fn precompute_fills_the_whole_tree() {
        let msm = mechanism();
        // g=2, h=2: internal nodes = root + 4 level-1 cells.
        let n = msm.precompute(usize::MAX);
        assert_eq!(n, 5);
    }

    #[test]
    fn export_import_roundtrip_preserves_distributions() {
        let provisioner = mechanism();
        provisioner.precompute(usize::MAX);
        let mut blob = Vec::new();
        let written = provisioner.export_cache(&mut blob).unwrap();
        assert_eq!(written, 5);
        assert!(!blob.is_empty());

        let device = mechanism();
        assert_eq!(device.cached_channels(), 0);
        let loaded = device.import_cache(&mut blob.as_slice()).unwrap();
        assert_eq!(loaded, 5);
        assert_eq!(device.cached_channels(), 5);

        // Identical exact output distributions without any further solving.
        let x = geoind_spatial::geom::Point::new(1.7, 6.1);
        let a = provisioner.exact_output_distribution(x);
        let b = device.exact_output_distribution(x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let device = mechanism();
        let mut blob: &[u8] = b"NOTMAGIC\x00\x00\x00\x00\x00\x00\x00\x00";
        let err = device.import_cache(&mut blob).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_rejected() {
        let provisioner = mechanism();
        provisioner.precompute(usize::MAX);
        let mut blob = Vec::new();
        provisioner.export_cache(&mut blob).unwrap();
        blob.truncate(blob.len() / 2);
        let device = mechanism();
        assert!(device.import_cache(&mut blob.as_slice()).is_err());
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let provisioner = mechanism();
        provisioner.precompute(usize::MAX);
        let mut blob = Vec::new();
        provisioner.export_cache(&mut blob).unwrap();
        // A device with a different domain scale must refuse the blob.
        let domain = BBox::square(16.0);
        let other = MsmMechanism::builder(domain, GridPrior::uniform(domain, 8))
            .epsilon(0.8)
            .granularity(2)
            .strategy(AllocationStrategy::FixedHeight(2))
            .build()
            .unwrap();
        assert!(other.import_cache(&mut blob.as_slice()).is_err());
    }

    #[test]
    fn precompute_respects_node_cap() {
        let msm = mechanism();
        let n = msm.precompute(2);
        assert!(n <= 2, "cache holds {n}");
    }
}
