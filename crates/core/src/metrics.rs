//! Quality-loss metrics `d_Q(x, z)` (Section 2.2 of the paper).
//!
//! Distinct from the *distinguishability* metric (always Euclidean here):
//! a quality metric measures how much service quality the user loses when
//! `z` is reported instead of `x`.

use geoind_spatial::geom::Point;

/// Quality-loss metric between true and reported locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QualityMetric {
    /// Euclidean distance (km) — extra distance travelled.
    Euclidean,
    /// Squared Euclidean distance (km²) — proxy for result-set inflation
    /// when the user widens the query radius to compensate.
    SqEuclidean,
}

impl QualityMetric {
    /// Evaluate the loss for one (true, reported) pair.
    #[inline]
    pub fn loss(&self, x: Point, z: Point) -> f64 {
        match self {
            QualityMetric::Euclidean => x.dist(z),
            QualityMetric::SqEuclidean => x.dist2(z),
        }
    }

    /// Unit string for reports.
    pub fn unit(&self) -> &'static str {
        match self {
            QualityMetric::Euclidean => "km",
            QualityMetric::SqEuclidean => "km^2",
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            QualityMetric::Euclidean => "d",
            QualityMetric::SqEuclidean => "d2",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn losses() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(QualityMetric::Euclidean.loss(a, b), 5.0);
        assert_eq!(QualityMetric::SqEuclidean.loss(a, b), 25.0);
        assert_eq!(QualityMetric::Euclidean.loss(a, a), 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(QualityMetric::Euclidean.unit(), "km");
        assert_eq!(QualityMetric::SqEuclidean.label(), "d2");
    }
}
