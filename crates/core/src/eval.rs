//! Utility-loss measurement harness (paper Section 6.1's protocol).
//!
//! The paper measures "the utility loss experienced by a user of a
//! location-based service over a set of 3,000 requests randomly selected
//! from the check-ins". [`Evaluator`] reproduces that protocol: sample
//! query locations from a dataset, run a mechanism on each, and aggregate
//! the quality loss plus wall-clock timing.

use crate::metrics::QualityMetric;
use crate::Mechanism;
use geoind_data::checkin::Dataset;
use geoind_rng::{Rng, SeededRng};
use geoind_spatial::geom::Point;
use std::time::Instant;

/// Aggregated measurement of one mechanism on one workload.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Mechanism name.
    pub mechanism: String,
    /// Quality metric used.
    pub metric: QualityMetric,
    /// Number of queries.
    pub queries: usize,
    /// Mean quality loss.
    pub mean_loss: f64,
    /// Standard deviation of the per-query loss.
    pub std_loss: f64,
    /// Median per-query loss.
    pub p50_loss: f64,
    /// 90th-percentile per-query loss.
    pub p90_loss: f64,
    /// Maximum observed loss.
    pub max_loss: f64,
    /// Mean per-query sanitization time, seconds.
    pub mean_time_s: f64,
    /// Total wall-clock for all queries, seconds.
    pub total_time_s: f64,
}

impl EvalReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: loss {:.4} {} (±{:.4}, p50 {:.4}, p90 {:.4}, max {:.4}) over {} queries, {:.2} ms/query",
            self.mechanism,
            self.mean_loss,
            self.metric.unit(),
            self.std_loss,
            self.p50_loss,
            self.p90_loss,
            self.max_loss,
            self.queries,
            self.mean_time_s * 1e3
        )
    }
}

/// A fixed query workload.
#[derive(Debug, Clone)]
pub struct Evaluator {
    queries: Vec<Point>,
}

impl Evaluator {
    /// Use an explicit query set.
    ///
    /// # Panics
    /// Panics if `queries` is empty.
    pub fn new(queries: Vec<Point>) -> Self {
        assert!(!queries.is_empty(), "need at least one query");
        Self { queries }
    }

    /// Sample `n` query locations uniformly from a dataset's check-ins
    /// (with replacement), seeded for reproducibility.
    ///
    /// # Panics
    /// Panics if the dataset is empty or `n == 0`.
    pub fn sample_from(dataset: &Dataset, n: usize, seed: u64) -> Self {
        assert!(
            !dataset.is_empty(),
            "cannot sample queries from an empty dataset"
        );
        assert!(n > 0, "need at least one query");
        let mut rng = SeededRng::from_seed(seed);
        let queries = (0..n)
            .map(|_| dataset.checkins()[rng.gen_range(0..dataset.len())].location)
            .collect();
        Self { queries }
    }

    /// The workload.
    pub fn queries(&self) -> &[Point] {
        &self.queries
    }

    /// Run `mechanism` over every query and aggregate the loss.
    pub fn measure<M: Mechanism>(
        &self,
        mechanism: &M,
        metric: QualityMetric,
        seed: u64,
    ) -> EvalReport {
        let mut rng = SeededRng::from_seed(seed);
        let mut losses = Vec::with_capacity(self.queries.len());
        let start = Instant::now();
        for &x in &self.queries {
            let z = mechanism.report(x, &mut rng);
            losses.push(metric.loss(x, z));
        }
        let total_time_s = start.elapsed().as_secs_f64();
        let n = losses.len() as f64;
        let mean = losses.iter().sum::<f64>() / n;
        let var = losses.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / n;
        let max = losses.iter().fold(0.0f64, |a, &b| a.max(b));
        let mut sorted = losses;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite losses"));
        EvalReport {
            mechanism: mechanism.name(),
            metric,
            queries: self.queries.len(),
            mean_loss: mean,
            std_loss: var.sqrt(),
            p50_loss: percentile(&sorted, 0.50),
            p90_loss: percentile(&sorted, 0.90),
            max_loss: max,
            mean_time_s: total_time_s / n,
            total_time_s,
        }
    }
}

/// Nearest-rank percentile of a pre-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoind_spatial::geom::BBox;

    /// A no-noise mechanism for harness testing.
    struct Identity;
    impl Mechanism for Identity {
        fn report<R: Rng + ?Sized>(&self, x: Point, _rng: &mut R) -> Point {
            x
        }
        fn name(&self) -> String {
            "identity".into()
        }
    }

    /// A constant-shift mechanism with known loss.
    struct Shift(f64);
    impl Mechanism for Shift {
        fn report<R: Rng + ?Sized>(&self, x: Point, _rng: &mut R) -> Point {
            x.offset(self.0, 0.0)
        }
        fn name(&self) -> String {
            "shift".into()
        }
    }

    #[test]
    fn identity_has_zero_loss() {
        let ev = Evaluator::new(vec![Point::new(1.0, 1.0), Point::new(2.0, 3.0)]);
        let r = ev.measure(&Identity, QualityMetric::Euclidean, 0);
        assert_eq!(r.mean_loss, 0.0);
        assert_eq!(r.std_loss, 0.0);
        assert_eq!(r.queries, 2);
    }

    #[test]
    fn constant_shift_has_exact_loss() {
        let ev = Evaluator::new(vec![Point::new(0.0, 0.0); 10]);
        let r = ev.measure(&Shift(2.5), QualityMetric::Euclidean, 0);
        assert!((r.mean_loss - 2.5).abs() < 1e-12);
        assert!(r.std_loss < 1e-12);
        assert!((r.p50_loss - 2.5).abs() < 1e-12);
        assert!((r.p90_loss - 2.5).abs() < 1e-12);
        let r2 = ev.measure(&Shift(2.5), QualityMetric::SqEuclidean, 0);
        assert!((r2.mean_loss - 6.25).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_reproducible() {
        let ds = geoind_data::synth::SyntheticCity::austin_like().generate_with_size(1_000, 100);
        let a = Evaluator::sample_from(&ds, 50, 42);
        let b = Evaluator::sample_from(&ds, 50, 42);
        assert_eq!(a.queries(), b.queries());
        let c = Evaluator::sample_from(&ds, 50, 43);
        assert_ne!(a.queries(), c.queries());
    }

    #[test]
    fn queries_come_from_dataset() {
        let ds = geoind_data::synth::SyntheticCity::vegas_like().generate_with_size(500, 50);
        let ev = Evaluator::sample_from(&ds, 100, 7);
        let domain: BBox = ds.domain();
        for q in ev.queries() {
            assert!(domain.contains(*q));
        }
    }

    #[test]
    fn summary_mentions_mechanism_and_unit() {
        let ev = Evaluator::new(vec![Point::new(0.0, 0.0)]);
        let r = ev.measure(&Identity, QualityMetric::Euclidean, 0);
        let s = r.summary();
        assert!(s.contains("identity"));
        assert!(s.contains("km"));
    }
}
