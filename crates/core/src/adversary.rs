//! Bayesian adversary against a known channel.
//!
//! GeoInd bounds the *multiplicative* knowledge gain of any adversary. This
//! module makes the attack concrete: given the adversary's prior `Π` and
//! the (public) channel `K`, compute the posterior `P(x | z)` and the
//! optimal remapping attack, and measure the expected inference error —
//! the standard evaluation companion to utility loss.

use crate::channel::Channel;
use crate::metrics::QualityMetric;
use geoind_spatial::geom::Point;

/// A Bayesian adversary with a prior over the channel's input locations.
#[derive(Debug, Clone)]
pub struct BayesianAdversary {
    prior: Vec<f64>,
}

impl BayesianAdversary {
    /// Create an adversary with the given (normalized internally) prior.
    ///
    /// # Panics
    /// Panics on negative weights or an all-zero prior.
    pub fn new(prior: Vec<f64>) -> Self {
        let total: f64 = prior
            .iter()
            .map(|&p| {
                assert!(p >= 0.0 && p.is_finite(), "invalid prior weight {p}");
                p
            })
            .sum();
        assert!(total > 0.0, "prior must have positive mass");
        Self {
            prior: prior.into_iter().map(|p| p / total).collect(),
        }
    }

    /// The adversary's normalized prior.
    pub fn prior(&self) -> &[f64] {
        &self.prior
    }

    /// Posterior `P(x | z)` over the channel's inputs after observing
    /// output index `z`. Returns `None` when `z` has zero marginal
    /// probability under this prior (the observation is impossible).
    ///
    /// # Panics
    /// Panics if the prior length does not match the channel's inputs.
    pub fn posterior(&self, channel: &Channel, z: usize) -> Option<Vec<f64>> {
        assert_eq!(
            self.prior.len(),
            channel.num_inputs(),
            "prior/channel mismatch"
        );
        let mut post: Vec<f64> = (0..channel.num_inputs())
            .map(|x| self.prior[x] * channel.prob(x, z))
            .collect();
        let total: f64 = post.iter().sum();
        if total <= 0.0 {
            return None;
        }
        for p in &mut post {
            *p /= total;
        }
        Some(post)
    }

    /// The Bayes-optimal point estimate after observing `z`: the candidate
    /// input minimizing posterior-expected loss under `metric`.
    pub fn optimal_guess(
        &self,
        channel: &Channel,
        z: usize,
        metric: QualityMetric,
    ) -> Option<Point> {
        let post = self.posterior(channel, z)?;
        let inputs = channel.inputs();
        let mut best: Option<(f64, Point)> = None;
        for &cand in inputs {
            let risk: f64 = post
                .iter()
                .zip(inputs)
                .map(|(&p, &x)| p * metric.loss(cand, x))
                .sum();
            if best.is_none_or(|(b, _)| risk < b) {
                best = Some((risk, cand));
            }
        }
        best.map(|(_, p)| p)
    }

    /// Expected inference error of the optimal remapping attack:
    /// `Σ_x Π(x) Σ_z K(x)(z) · metric(x, guess(z))`. Larger is better for
    /// the user.
    pub fn expected_error(&self, channel: &Channel, metric: QualityMetric) -> f64 {
        let n = channel.num_inputs();
        let m = channel.num_outputs();
        let guesses: Vec<Option<Point>> = (0..m)
            .map(|z| self.optimal_guess(channel, z, metric))
            .collect();
        let mut total = 0.0;
        for x in 0..n {
            if self.prior[x] == 0.0 {
                continue;
            }
            for (z, guess) in guesses.iter().enumerate() {
                let p = channel.prob(x, z);
                if p > 0.0 {
                    if let Some(g) = guess {
                        total += self.prior[x] * p * metric.loss(channel.inputs()[x], *g);
                    }
                }
            }
        }
        total
    }

    /// The adversary's *prior* expected error (best guess before seeing any
    /// output) — the baseline the channel's noise is measured against.
    pub fn prior_error(&self, channel: &Channel, metric: QualityMetric) -> f64 {
        let inputs = channel.inputs();
        let mut best = f64::INFINITY;
        for &cand in inputs {
            let risk: f64 = self
                .prior
                .iter()
                .zip(inputs)
                .map(|(&p, &x)| p * metric.loss(cand, x))
                .sum();
            best = best.min(risk);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel2(stay: f64) -> Channel {
        let pts = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        Channel::new(pts.clone(), pts, vec![stay, 1.0 - stay, 1.0 - stay, stay])
    }

    #[test]
    fn posterior_bayes_rule() {
        let c = channel2(0.8);
        let adv = BayesianAdversary::new(vec![0.5, 0.5]);
        let post = adv.posterior(&c, 0).unwrap();
        assert!((post[0] - 0.8).abs() < 1e-12);
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Skewed prior shifts the posterior.
        let adv = BayesianAdversary::new(vec![0.9, 0.1]);
        let post = adv.posterior(&c, 0).unwrap();
        assert!(post[0] > 0.95);
    }

    #[test]
    fn impossible_observation_is_none() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let c = Channel::new(pts.clone(), pts, vec![1.0, 0.0, 1.0, 0.0]);
        let adv = BayesianAdversary::new(vec![0.5, 0.5]);
        assert!(adv.posterior(&c, 1).is_none());
    }

    #[test]
    fn optimal_guess_follows_posterior_mode_for_two_points() {
        let c = channel2(0.9);
        let adv = BayesianAdversary::new(vec![0.5, 0.5]);
        assert_eq!(
            adv.optimal_guess(&c, 0, QualityMetric::Euclidean),
            Some(Point::new(0.0, 0.0))
        );
        assert_eq!(
            adv.optimal_guess(&c, 1, QualityMetric::Euclidean),
            Some(Point::new(2.0, 0.0))
        );
    }

    #[test]
    fn noisier_channel_increases_adversary_error() {
        let adv = BayesianAdversary::new(vec![0.5, 0.5]);
        let sharp = adv.expected_error(&channel2(0.95), QualityMetric::Euclidean);
        let noisy = adv.expected_error(&channel2(0.6), QualityMetric::Euclidean);
        assert!(noisy > sharp, "noisy {noisy} vs sharp {sharp}");
    }

    #[test]
    fn prior_error_is_upper_bound_on_posterior_attack() {
        // Observing the channel can only help the adversary.
        let adv = BayesianAdversary::new(vec![0.3, 0.7]);
        for stay in [0.5, 0.7, 0.9] {
            let c = channel2(stay);
            let post = adv.expected_error(&c, QualityMetric::Euclidean);
            let prior = adv.prior_error(&c, QualityMetric::Euclidean);
            assert!(post <= prior + 1e-12, "stay={stay}: {post} > {prior}");
        }
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn zero_prior_rejected() {
        BayesianAdversary::new(vec![0.0, 0.0]);
    }
}
