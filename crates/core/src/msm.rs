//! The Multi-Step Mechanism (paper Section 4, Algorithm 1).
//!
//! MSM walks a GeoInd-preserving hierarchical index (GIHI) from the virtual
//! root to a leaf. At each level it restricts the prior to the `g²` children
//! of the previously selected cell, solves (or fetches from cache) the
//! optimal mechanism over those `g²` logical locations with that level's
//! budget `ε_i`, and samples the next cell. The leaf-level sample is
//! reported. By sequential composition the whole walk satisfies GeoInd with
//! budget `Σ ε_i = ε`, while every LP is only `g²` locations large — this is
//! the paper's utility/scalability compromise.
//!
//! If the true location falls outside the selected cell at some level
//! (a privacy-mandated event), its logical location for that step is drawn
//! uniformly from the sub-grid (Algorithm 1, lines 9–10).
//!
//! The per-node channels depend only on `(node, ε_i, prior, d_Q)` — never on
//! the query — so they are memoized: a client answering thousands of queries
//! pays each LP once.

use crate::alloc::{AllocationStrategy, BudgetAllocator, LevelBudgets};
use crate::cache::ShardedCache;
use crate::certify::{Certificate, Verdict};
use crate::channel::Channel;
use crate::metrics::QualityMetric;
use crate::opt::{ConstraintSet, OptOptions, OptimalMechanism};
use crate::spanner::Spanner;
use crate::{Mechanism, MechanismError};
use geoind_data::prior::GridPrior;
use geoind_lp::simplex::Basis;
use geoind_rng::Rng;
use geoind_spatial::geom::{BBox, Point};
use geoind_spatial::grid::Grid;
use geoind_spatial::hier::{HierGrid, LevelCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, PoisonError, RwLock};

/// Builder for [`MsmMechanism`].
#[derive(Debug, Clone)]
pub struct MsmBuilder {
    domain: BBox,
    prior: GridPrior,
    eps: Option<f64>,
    g: u32,
    rho: f64,
    metric: QualityMetric,
    strategy: AllocationStrategy,
    opt_options: OptOptions,
    caching: bool,
}

impl MsmBuilder {
    /// Total privacy budget `ε` (required).
    pub fn epsilon(mut self, eps: f64) -> Self {
        self.eps = Some(eps);
        self
    }

    /// Per-level grid granularity `g` (fan-out `g²`). Default 4.
    pub fn granularity(mut self, g: u32) -> Self {
        self.g = g;
        self
    }

    /// Target self-map probability `ρ` for the budget allocator.
    /// Default 0.8 (the paper's default).
    pub fn rho(mut self, rho: f64) -> Self {
        self.rho = rho;
        self
    }

    /// Quality metric `d_Q`. Default Euclidean.
    pub fn metric(mut self, metric: QualityMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Budget-allocation strategy. Default `Auto { max_height: 5 }`.
    pub fn strategy(mut self, strategy: AllocationStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Options forwarded to every per-node OPT solve.
    pub fn opt_options(mut self, opts: OptOptions) -> Self {
        self.opt_options = opts;
        self
    }

    /// Enable/disable the per-node channel cache (on by default; the off
    /// switch exists for the `abl-cache` ablation).
    pub fn caching(mut self, on: bool) -> Self {
        self.caching = on;
        self
    }

    /// Finalize.
    ///
    /// # Errors
    /// [`MechanismError::BadParameter`] when ε is missing/non-positive, the
    /// granularity is < 2, or the prior's domain disagrees with `domain`.
    pub fn build(self) -> Result<MsmMechanism, MechanismError> {
        let eps = self
            .eps
            .ok_or_else(|| MechanismError::BadParameter("epsilon not set".into()))?;
        if eps <= 0.0 {
            return Err(MechanismError::BadParameter(format!(
                "eps must be positive, got {eps}"
            )));
        }
        if self.g < 2 {
            return Err(MechanismError::BadParameter(format!(
                "granularity must be >= 2, got {}",
                self.g
            )));
        }
        let pd = self.prior.grid().domain();
        if (pd.min.dist(self.domain.min) > 1e-9) || (pd.max.dist(self.domain.max) > 1e-9) {
            return Err(MechanismError::BadParameter(
                "prior domain differs from mechanism domain".into(),
            ));
        }
        let allocator = BudgetAllocator::new(self.domain.side(), self.g, self.rho);
        let budgets = allocator.allocate(eps, self.strategy)?;
        let hier = HierGrid::new(self.domain, self.g, budgets.height());
        Ok(MsmMechanism {
            hier,
            budgets,
            prior: self.prior,
            metric: self.metric,
            eps,
            rho: self.rho,
            opt_options: self.opt_options,
            caching: self.caching,
            cache: ShardedCache::new("msm channel cache"),
            residual_watermark: Mutex::new((0.0, 0.0)),
            pivot_count: AtomicU64::new(0),
            level_stats: Mutex::new(BTreeMap::new()),
            flat_tree: RwLock::new(None),
        })
    }
}

/// A completed MSM descent: the reported point plus whether any channel
/// sampled along the way was admitted via the certify→repair path rather
/// than certifying outright (the serving layer counts repaired service).
#[derive(Debug, Clone, Copy)]
pub struct DescentOutcome {
    /// The reported (sanitized) location.
    pub point: Point,
    /// True when at least one sampled channel carries a `Repaired` verdict.
    pub repaired: bool,
}

/// The whole hierarchy's admission-built alias tables fused into one
/// contiguous structure, so a healthy descent is `h` array walks with no
/// cache fetch, no per-level channel `Arc`, and no child-`Vec` allocation.
///
/// Built by [`MsmMechanism::flatten`] strictly from channels that passed
/// the admission gate (each per-node table is the one
/// [`crate::channel::Channel::with_certificate`] attached post-certify);
/// any cache mutation drops the tree, so it can never serve stale rows.
/// `descend` replicates [`MsmMechanism::try_report_resumable`]'s healthy
/// path draw-for-draw: the same grid geometry decides the input row, the
/// same slot-then-coin alias draws pick the child, so a fixed seed yields
/// bit-identical outputs on both paths (pinned by the determinism suite).
#[derive(Debug)]
pub(crate) struct FlatTree {
    /// Per-level granularity `g`.
    g: usize,
    /// Fan-out `g²` — rows and columns of every per-node table.
    gg: usize,
    height: u32,
    domain: BBox,
    /// `node_base[l]` = number of internal nodes on levels `< l`.
    node_base: Vec<usize>,
    /// Acceptance probability of node `n`, row `r`, slot `i` at
    /// `(n·g² + r)·g² + i`. Split from `alias` (rather than interleaved
    /// as one slot struct) because the coin *accepts* most draws: the
    /// alias category is only read on rejection, so keeping it out of
    /// line halves the walk's hot footprint.
    prob: Vec<f64>,
    /// Alias category at the same index — read only when the acceptance
    /// coin at that slot fails.
    alias: Vec<u32>,
    /// Per-node flag: the admitted channel carries a `Repaired` verdict.
    repaired: Vec<bool>,
    /// Rejection zone of `Rng::gen_u64_below(g²)` — the largest multiple
    /// of `g²`, precomputed so each slot draw skips the modulo that
    /// derives it.
    zone: u64,
    /// `g² - 1` when `g²` is a power of two (reduce by mask, same result
    /// as `% g²`), else `u64::MAX` as the "divide" sentinel.
    gg_mask: u64,
    /// `z / g` and `z % g` for `z ∈ 0..g²` — the child-id arithmetic
    /// without per-level hardware division.
    zdiv: Vec<u32>,
    zmod: Vec<u32>,
    /// `r % g` for every global row/col index up to the leaf granularity.
    mod_g: Vec<u32>,
    /// `grids[l].cell_side()`, hoisted out of the walk.
    cell_side: Vec<f64>,
    /// `grids[l].granularity()`, hoisted out of the walk.
    gran: Vec<usize>,
}

/// Stack bound on hoisted per-level scratch in [`FlatTree::descend`].
/// Unreachable in practice: a height-17 hierarchy would need a leaf grid
/// of g³⁴ cells.
const MAX_FLAT_HEIGHT: usize = 16;

impl FlatTree {
    /// One fused root-to-leaf walk. Infallible: every internal node's
    /// table was copied in at [`MsmMechanism::flatten`] time.
    ///
    /// Draw-for-draw and bit-for-bit identical to the unfused loop in
    /// [`MsmMechanism::descend_with`]: the geometry below inlines exactly
    /// the float operations of `Grid::extent_of` + `BBox::contains` and
    /// `Grid::cell_of`, and [`Self::draw_index`] replicates
    /// `rng.gen_range(0..g²)` — the walk only *removes* redundant integer
    /// div/mod round-trips (row/col are tracked incrementally instead of
    /// recovered from the cell id each level).
    pub(crate) fn descend<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> DescentOutcome {
        let x = clamp_into(self.domain, x);
        let g = self.g;
        let min = self.domain.min;
        let height = self.height as usize;
        // Hoisted per-level geometry: the input row x selects at each
        // level depends only on (x, level), never on the walk state, so
        // the float divisions of `Grid::cell_of` run up front instead of
        // on the serial draw→load→draw chain of the walk itself.
        let mut in_row = [0usize; MAX_FLAT_HEIGHT];
        for (level, slot) in in_row.iter_mut().enumerate().take(height) {
            // `grids[level + 1].cell_of(x)`, keeping row/col instead of
            // packing them into an id and dividing them back out.
            let csn = self.cell_side[level + 1];
            let gn = self.gran[level + 1] as i64;
            let cn = (((x.x - min.x) / csn).floor() as i64).clamp(0, gn - 1) as usize;
            let rn = (((x.y - min.y) / csn).floor() as i64).clamp(0, gn - 1) as usize;
            *slot = self.mod_g[rn] as usize * g + self.mod_g[cn] as usize;
        }
        // Walk state: the current cell id in grids[level] plus its
        // (row, col), maintained incrementally.
        let (mut id, mut row, mut col) = (0usize, 0usize, 0usize);
        let mut repaired = false;
        for level in 0..height {
            let node = self.node_base[level] + id;
            repaired |= self.repaired[node];
            // Same float ops as `grids[level].extent_of(id).contains(x)`.
            let cs = self.cell_side[level];
            let min_x = min.x + col as f64 * cs;
            let min_y = min.y + row as f64 * cs;
            let inside = x.x >= min_x && x.x < min_x + cs && x.y >= min_y && x.y < min_y + cs;
            // Input row: the enclosing child when x is inside this cell,
            // else a uniform row (Algorithm 1, lines 9-10) — the same
            // draw the unfused walk makes.
            let input_idx = if inside {
                in_row[level]
            } else {
                self.draw_index(rng)
            };
            // Fused alias draw: slot uniform, then the acceptance coin.
            let base = (node * self.gg + input_idx) * self.gg;
            let slot = self.draw_index(rng);
            let z = if rng.gen_f64() < self.prob[base + slot] {
                slot
            } else {
                self.alias[base + slot] as usize
            };
            // Child id, exactly as `HierGrid::children(cell)[z]` lays
            // them out (local row-major order):
            // id = (row·g + z/g)·gⁿ + col·g + z%g for the next level's
            // granularity gⁿ — the same integers, via the lookup tables.
            row = row * g + self.zdiv[z] as usize;
            col = col * g + self.zmod[z] as usize;
            id = row * self.gran[level + 1] + col;
        }
        // Same float ops as `grids[height].center_of(id)`.
        let cs = self.cell_side[height];
        DescentOutcome {
            point: Point::new(
                min.x + (col as f64 + 0.5) * cs,
                min.y + (row as f64 + 0.5) * cs,
            ),
            repaired,
        }
    }

    /// `rng.gen_range(0..g²)` with the rejection zone precomputed: the
    /// same accept/reject sequence, the same result, one less division.
    #[inline]
    fn draw_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        loop {
            let v = rng.next_u64();
            if v < self.zone {
                return if self.gg_mask != u64::MAX {
                    (v & self.gg_mask) as usize
                } else {
                    (v % self.gg as u64) as usize
                };
            }
        }
    }
}

/// A failed MSM descent: the typed fault plus the cell the completed
/// levels had already selected.
///
/// `resume.level` levels of the per-level budget (`ε_1..ε_k`) were spent
/// on input-dependent sampling before the fault; a privacy-sound fallback
/// must continue from `resume` using only the remaining level budgets.
/// Faults at the root (`resume == LevelCell::ROOT`) happened before any
/// sampling, so the full budget is still available.
#[derive(Debug)]
pub struct DescentInterrupted {
    /// The cell selected by the levels that completed (`ROOT` when none
    /// did).
    pub resume: LevelCell,
    /// The fault that stopped the descent.
    pub error: MechanismError,
}

/// Result of [`MsmMechanism::audit_flat_tables`]: the alias-table
/// marginals of every cached channel, checked against the certified
/// matrix entries.
#[derive(Debug, Clone)]
pub struct FlatAudit {
    /// Cached channels inspected.
    pub channels: usize,
    /// How many of them carry an admission-built flat table.
    pub flattened: usize,
    /// Worst `|reconstructed - certified|` entry across all tables.
    pub worst_error: f64,
    /// Channels whose table exceeds the strict certification tolerance —
    /// a corrupted table serving behind a valid certificate.
    pub failures: Vec<(LevelCell, f64)>,
}

/// Aggregated LP solve effort for one tree level, keyed by the level of
/// the solved channels (`parent.level + 1`). `geoind precompute` prints
/// one line per level so the delayed-constraint-generation savings
/// (`rows_active` vs `rows_total`) are visible where they happen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelSolveStats {
    /// Per-node OPT solves that actually ran at this level (cache hits
    /// don't count).
    pub solves: u64,
    /// Cut-generation rounds summed over those solves (0 under an eager
    /// full materialization).
    pub cut_rounds: u64,
    /// Rows materialized in the final working LPs, summed.
    pub rows_active: u64,
    /// Rows the full target programs would have, summed.
    pub rows_total: u64,
}

/// The multi-step mechanism over a hierarchical grid index.
#[derive(Debug)]
pub struct MsmMechanism {
    hier: HierGrid,
    budgets: LevelBudgets,
    prior: GridPrior,
    metric: QualityMetric,
    eps: f64,
    rho: f64,
    opt_options: OptOptions,
    caching: bool,
    /// Per-node channel memo: sharded by FNV over the cell key, with
    /// single-flight fills so concurrent misses of the same node run one
    /// LP solve (and one admission gate) between them.
    cache: ShardedCache<LevelCell, Channel>,
    /// Worst (primal, dual) LP residual seen across per-node solves —
    /// surfaced by `geoind precompute` and `geoind doctor`.
    residual_watermark: Mutex<(f64, f64)>,
    /// Total simplex pivots across per-node solves — the benchmark
    /// harness reads this to quantify what warm starts save.
    pivot_count: AtomicU64,
    /// Per-level aggregated solve stats (cut rounds, active vs total
    /// rows), keyed by channel level — read by `geoind precompute`.
    level_stats: Mutex<BTreeMap<u32, LevelSolveStats>>,
    /// The fused serving structure, when [`Self::flatten`] has run and no
    /// cache mutation has dropped it since.
    flat_tree: RwLock<Option<Arc<FlatTree>>>,
}

impl MsmMechanism {
    /// Start a builder over `domain` with a (fine-grained) global prior.
    pub fn builder(domain: BBox, prior: GridPrior) -> MsmBuilder {
        MsmBuilder {
            domain,
            prior,
            eps: None,
            g: 4,
            rho: 0.8,
            metric: QualityMetric::Euclidean,
            strategy: AllocationStrategy::default(),
            opt_options: OptOptions::default(),
            caching: true,
        }
    }

    /// Total privacy budget.
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Target self-map probability `ρ`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Per-level grid granularity `g`.
    pub fn granularity(&self) -> u32 {
        self.hier.granularity()
    }

    /// Index height `h`.
    pub fn height(&self) -> u32 {
        self.hier.height()
    }

    /// Effective leaf granularity `g^h`.
    pub fn effective_granularity(&self) -> u32 {
        self.hier.effective_granularity(self.hier.height())
    }

    /// The per-level budgets chosen by the allocator.
    pub fn budgets(&self) -> &LevelBudgets {
        &self.budgets
    }

    /// The quality metric.
    pub fn metric(&self) -> QualityMetric {
        self.metric
    }

    /// The leaf-level grid (all possible reported locations are its cell
    /// centers).
    pub fn leaf_grid(&self) -> Grid {
        self.hier.level_grid(self.hier.height())
    }

    /// Number of per-node channels currently memoized.
    pub fn cached_channels(&self) -> usize {
        self.cache.len()
    }

    /// Drop all memoized channels (and the fused tree assembled from
    /// them — it must never outlive the rows it was copied from).
    pub fn clear_cache(&self) {
        self.cache.clear();
        self.drop_flat_tree();
    }

    /// Duplicate channel fills suppressed by the cache's single-flight
    /// discipline: each count is a concurrent fetch that would have paid a
    /// redundant LP solve under a plain read/solve/insert cache and was
    /// instead handed the winner's admitted channel.
    pub fn dedup_suppressed(&self) -> u64 {
        self.cache.dedup_suppressed()
    }

    /// Internal accessors for the offline precompute/persistence module.
    ///
    /// One gated, cached, optionally warm-started per-node solve through
    /// the regular single-flight path. The `basis_out` side channel
    /// captures the solve's exit basis only when this call actually ran
    /// the fill (a cache hit or a racing filler leaves it `None`).
    pub(crate) fn cache_fill_warm(
        &self,
        cell: LevelCell,
        warm: Option<&Basis>,
        shared: Option<&Arc<Spanner>>,
        basis_out: &mut Option<Basis>,
    ) -> Result<Arc<Channel>, MechanismError> {
        if !self.caching {
            let (ch, basis) = self.build_channel_warm(cell, warm, shared)?;
            *basis_out = Some(basis);
            return Ok(Arc::new(ch));
        }
        self.cache.get_or_fill(cell, || {
            let (ch, basis) = self.build_channel_warm(cell, warm, shared)?;
            *basis_out = Some(basis);
            Ok(ch)
        })
    }

    /// The greedy spanner shared by every node solve on one tree level,
    /// built from `donor`'s child geometry. All nodes at a level have
    /// congruent (translated) child grids, so their pairwise distances —
    /// and hence the greedy spanner, an O(n³) construction — agree; the
    /// precompute schedule builds it once per level instead of once per
    /// node. Returns `None` when the configured solve never consults a
    /// spanner (full-set target with cut generation off) or when the
    /// dilation is invalid (the solve itself surfaces the typed error).
    pub(crate) fn level_shared_spanner(&self, donor: LevelCell) -> Option<Arc<Spanner>> {
        let dilation = match self.opt_options.constraints {
            ConstraintSet::Spanner { dilation } => dilation,
            ConstraintSet::Full if self.opt_options.cutgen.enabled => {
                self.opt_options.cutgen.seed_dilation
            }
            ConstraintSet::Full => return None,
        };
        if !(dilation.is_finite() && dilation >= 1.0) {
            return None;
        }
        let centers: Vec<Point> = self
            .hier
            .children(donor)
            .iter()
            .map(|c| self.hier.center(*c))
            .collect();
        if centers.len() < 2 {
            return None;
        }
        Some(Arc::new(Spanner::greedy(&centers, dilation)))
    }

    pub(crate) fn children_of(&self, parent: LevelCell) -> Vec<LevelCell> {
        self.hier.children(parent)
    }

    pub(crate) fn center_of(&self, cell: LevelCell) -> geoind_spatial::geom::Point {
        self.hier.center(cell)
    }

    pub(crate) fn cache_snapshot(&self) -> Vec<(LevelCell, Arc<Channel>)> {
        let mut v = self.cache.entries();
        v.sort_by_key(|(c, _)| (c.level, c.id));
        v
    }

    pub(crate) fn cache_insert(&self, cell: LevelCell, channel: Arc<Channel>) {
        self.cache.insert(cell, channel);
        // The fused tree is a copy of the cached tables; any replacement
        // (e.g. an offline-bundle import) invalidates it.
        self.drop_flat_tree();
    }

    pub(crate) fn cache_get(&self, cell: LevelCell) -> Option<Arc<Channel>> {
        self.cache.get(&cell)
    }

    /// The optimal channel over the children of `parent` (level
    /// `parent.level + 1`), memoized when caching is enabled. Panicking
    /// convenience wrapper around [`Self::try_channel_for`].
    fn channel_for(&self, parent: LevelCell) -> Arc<Channel> {
        self.try_channel_for(parent).expect(
            "per-node channel construction failed; use try_report / \
                     ResilientMechanism for graceful degradation",
        )
    }

    /// The optimal channel over the children of `parent`, memoized when
    /// caching is enabled.
    ///
    /// # Errors
    /// [`MechanismError::LockPoisoned`] when the channel cache's lock was
    /// poisoned by a panic on another thread (the memoized channels can no
    /// longer be trusted); any [`MechanismError`] from the per-node OPT
    /// solve.
    pub fn try_channel_for(&self, parent: LevelCell) -> Result<Arc<Channel>, MechanismError> {
        if !self.caching {
            // Ablation path: no cache, no single-flight, a fresh gated
            // solve per fetch — and no `cache.lock.poisoned` exposure,
            // since no shared cache state is touched.
            return Ok(Arc::new(self.build_channel(parent)?));
        }
        self.cache
            .get_or_fill(parent, || self.build_channel(parent))
    }

    /// Solve the per-node OPT: `g²` child-cell centers, the global prior
    /// restricted to the node and renormalized (uniform when the node has
    /// zero mass), and the level budget.
    fn build_channel(&self, parent: LevelCell) -> Result<Channel, MechanismError> {
        self.build_channel_warm(parent, None, None)
            .map(|(ch, _)| ch)
    }

    /// [`Self::build_channel`] with an optional warm-start basis from a
    /// sibling node's solve; also returns the exit basis so the parallel
    /// precompute can seed the rest of the level. Warm starting changes
    /// pivot counts, never the admitted channel: the engine falls back to
    /// a cold start on any mismatch and both paths exit at the same
    /// (deterministic) optimum, behind the same admission gate.
    pub(crate) fn build_channel_warm(
        &self,
        parent: LevelCell,
        warm: Option<&Basis>,
        shared: Option<&Arc<Spanner>>,
    ) -> Result<(Channel, Basis), MechanismError> {
        let children = self.hier.children(parent);
        let centers: Vec<Point> = children.iter().map(|c| self.hier.center(*c)).collect();
        let extents: Vec<BBox> = children.iter().map(|c| self.hier.extent(*c)).collect();
        let mut masses = self.prior.masses(&extents);
        let total: f64 = masses.iter().sum();
        if total <= 0.0 {
            masses = vec![1.0; masses.len()];
        }
        let level = parent.level + 1;
        let eps_i = self.budgets.level(level);
        let mut opts = self.opt_options.clone();
        opts.simplex.start_basis = warm.cloned();
        opts.shared_spanner = shared.cloned();
        let opt = OptimalMechanism::solve_with(eps_i, &centers, &masses, self.metric, opts)?;
        let stats = opt.stats();
        self.pivot_count
            .fetch_add(stats.iterations as u64, Ordering::Relaxed);
        {
            let mut w = self
                .residual_watermark
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            w.0 = w.0.max(stats.primal_residual);
            w.1 = w.1.max(stats.dual_residual);
        }
        {
            let mut ls = self
                .level_stats
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let entry = ls.entry(level).or_default();
            entry.solves += 1;
            entry.cut_rounds += stats.cut_rounds as u64;
            entry.rows_active += stats.rows_active as u64;
            entry.rows_total += stats.rows_total as u64;
        }
        Ok((opt.channel().clone(), opt.basis().clone()))
    }

    /// Total simplex pivots performed across all per-node LP solves so
    /// far. The benchmark harness compares this between cold and
    /// warm-started precompute runs; warm starts change this number,
    /// never the admitted channels.
    pub fn lp_pivot_count(&self) -> u64 {
        self.pivot_count.load(Ordering::Relaxed)
    }

    /// Worst `(primal, dual)` LP residual observed across all per-node
    /// solves so far (both 0 before any solve ran).
    pub fn lp_residual_watermark(&self) -> (f64, f64) {
        *self
            .residual_watermark
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Per-level aggregated solve statistics, sorted by level. A solve is
    /// counted at the level of the channel it built (`parent.level + 1`);
    /// cache hits never count.
    pub fn level_solve_stats(&self) -> Vec<(u32, LevelSolveStats)> {
        self.level_stats
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&l, &s)| (l, s))
            .collect()
    }

    /// The per-solve options this mechanism forwards to every per-node
    /// OPT solve (constraint set, cut-generation tuning, simplex knobs).
    pub fn opt_options(&self) -> &OptOptions {
        &self.opt_options
    }

    /// Re-certify every memoized channel against its level budget at the
    /// recheck tolerance — the strict (post-repair) tolerance, widened by
    /// the `δ·(n−1)` chaining factor when this mechanism provisions its
    /// channels under a spanner constraint set (holding those to the bare
    /// full-set tolerance would risk false quarantine; see
    /// [`crate::certify::recheck_tolerance`]). No repairs happen here.
    /// Returns one `(parent cell, certificate)` per cached channel; a
    /// `Quarantined` verdict means the cached channel must not be served —
    /// `geoind doctor` exits nonzero on any such entry.
    pub fn recertify_cache(&self) -> Vec<(LevelCell, Certificate)> {
        self.cache_snapshot()
            .into_iter()
            .map(|(cell, ch)| {
                let eps_i = self.budgets.level(cell.level + 1);
                let tol = crate::certify::recheck_tolerance(
                    ch.num_inputs(),
                    ch.num_outputs(),
                    self.opt_options.constraints,
                );
                (cell, crate::certify::certify(&ch, eps_i, tol))
            })
            .collect()
    }

    /// Re-derive every cached channel's alias-table row marginals (the
    /// distribution the serving path actually samples from) and compare
    /// them against the certified matrix at the strict tolerance.
    ///
    /// Certification vouches for the matrix `probs`; the flattened tables
    /// are a *derived* artifact built at admission. If the two ever
    /// disagree — a corrupted table, a stale rebuild — the channel would
    /// serve a distribution its certificate never checked. This audit
    /// closes that gap: `geoind doctor` runs it and exits nonzero on any
    /// entry in [`FlatAudit::failures`].
    pub fn audit_flat_tables(&self) -> FlatAudit {
        let mut audit = FlatAudit {
            channels: 0,
            flattened: 0,
            worst_error: 0.0,
            failures: Vec::new(),
        };
        for (cell, ch) in self.cache_snapshot() {
            audit.channels += 1;
            let Some(err) = ch.flat_marginal_error() else {
                // No table: the channel serves through the inverse-CDF scan
                // over the certified matrix itself, which cannot drift.
                continue;
            };
            audit.flattened += 1;
            audit.worst_error = audit.worst_error.max(err);
            let tol = crate::certify::strict_tolerance(ch.num_inputs(), ch.num_outputs());
            if err > tol {
                audit.failures.push((cell, err));
            }
        }
        audit
    }

    /// Fallible form of [`Mechanism::report`]: the full hierarchical
    /// descent, surfacing any per-node construction or cache failure as a
    /// typed error instead of panicking.
    ///
    /// # Errors
    /// Any [`MechanismError`] raised while fetching or building a
    /// per-level channel.
    pub fn try_report<R: Rng + ?Sized>(
        &self,
        x: Point,
        rng: &mut R,
    ) -> Result<Point, MechanismError> {
        self.try_report_resumable(x, rng)
            .map(|o| o.point)
            .map_err(|i| i.error)
    }

    /// Like [`Self::try_report`], but a failure also carries *where the
    /// walk stopped*, so a fallback can resume the descent from the cell
    /// already selected instead of restarting — restarting would spend
    /// fresh budget on an input whose completed levels already consumed
    /// `ε_1..ε_k`. [`crate::ResilientMechanism`] builds its degradation
    /// ladder on this.
    ///
    /// A level's channel is fetched *before* any of that level's
    /// randomness is drawn, so on failure the levels up to
    /// `resume.level` are exactly the levels whose budget was spent.
    ///
    /// # Errors
    /// [`DescentInterrupted`] wrapping any [`MechanismError`] raised
    /// while fetching or building a per-level channel.
    pub fn try_report_resumable<R: Rng + ?Sized>(
        &self,
        x: Point,
        rng: &mut R,
    ) -> Result<DescentOutcome, DescentInterrupted> {
        {
            // Fused fast path: descend while *holding* the read guard —
            // the walk touches no lock and no cache, so this only makes a
            // concurrent `flatten`/`clear_cache` wait out one descent,
            // and it spares every request an `Arc` clone + drop.
            let guard = self
                .flat_tree
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(tree) = guard.as_deref() {
                return Ok(tree.descend(x, rng));
            }
        }
        // Unfused path solves/caches channels, whose admission drops the
        // tree (write lock) — the guard above must already be released.
        self.descend_with(None, x, rng)
    }

    /// [`Self::try_report_resumable`] with the fused-tree lookup hoisted
    /// out, so batch serving resolves the tree once per batch instead of
    /// once per request.
    pub(crate) fn descend_with<R: Rng + ?Sized>(
        &self,
        tree: Option<&FlatTree>,
        x: Point,
        rng: &mut R,
    ) -> Result<DescentOutcome, DescentInterrupted> {
        if let Some(tree) = tree {
            // Fused fast path: bit-identical to the loop below on a
            // healthy descent, and a flattened hierarchy has every
            // channel already admitted, so no fault can interrupt it.
            return Ok(tree.descend(x, rng));
        }
        let x = clamp_into(self.hier.domain(), x);
        let mut current = LevelCell::ROOT;
        let mut repaired = false;
        for _level in 1..=self.hier.height() {
            let children = self.hier.children(current);
            let channel = match self.try_channel_for(current) {
                Ok(c) => c,
                Err(error) => {
                    return Err(DescentInterrupted {
                        resume: current,
                        error,
                    })
                }
            };
            repaired |= channel
                .certificate()
                .is_some_and(|c| c.verdict == Verdict::Repaired);
            let ext = self.hier.extent(current);
            let input_idx = if ext.contains(x) {
                self.hier
                    .local_index(self.hier.enclosing_cell(x, current.level + 1))
            } else {
                rng.gen_range(0..children.len())
            };
            let z = channel.sample(input_idx, rng);
            current = children[z];
        }
        Ok(DescentOutcome {
            point: self.hier.center(current),
            repaired,
        })
    }

    /// Flatten every internal node's admission-built alias table into one
    /// fused [`FlatTree`] and switch serving onto it. Solves (through the
    /// regular gated, cached path) any node not yet memoized, so this
    /// doubles as a full precompute; tables are only ever copied from
    /// channels carrying a certificate. Returns the number of internal
    /// nodes fused.
    ///
    /// # Errors
    /// Any [`MechanismError`] from a per-node solve, or
    /// [`MechanismError::BadParameter`] when an admitted channel has no
    /// flattened table (its admission-time build degraded through the
    /// `sample.alias.build` failpoint) — serving then simply stays on the
    /// unfused per-level path, which falls back to the inverse-CDF scan
    /// for the affected node.
    pub fn flatten(&self) -> Result<usize, MechanismError> {
        let g = self.hier.granularity() as usize;
        let gg = g * g;
        let height = self.hier.height();
        let grids: Vec<Grid> = (0..=height).map(|l| self.hier.level_grid(l)).collect();
        let mut node_base = Vec::with_capacity(height as usize);
        let mut total = 0usize;
        for level in 0..height {
            node_base.push(total);
            total += grids[level as usize].num_cells();
        }
        if height as usize > MAX_FLAT_HEIGHT {
            return Err(MechanismError::BadParameter(format!(
                "cannot flatten a height-{height} hierarchy (max {MAX_FLAT_HEIGHT})"
            )));
        }
        let mut prob = Vec::with_capacity(total * gg * gg);
        let mut alias = Vec::with_capacity(total * gg * gg);
        let mut repaired = Vec::with_capacity(total);
        for level in 0..height {
            for id in 0..grids[level as usize].num_cells() {
                let cell = LevelCell { level, id };
                let channel = self.try_channel_for(cell)?;
                let flat = channel.flat().ok_or_else(|| {
                    MechanismError::BadParameter(format!(
                        "channel for level-{level} node {id} has no flattened alias \
                         tables (admission-time build degraded)"
                    ))
                })?;
                if flat.rows() != gg || flat.outputs() != gg {
                    return Err(MechanismError::BadParameter(format!(
                        "channel for level-{level} node {id} is {}x{}, expected {gg}x{gg}",
                        flat.rows(),
                        flat.outputs()
                    )));
                }
                repaired.push(
                    channel
                        .certificate()
                        .is_some_and(|c| c.verdict == Verdict::Repaired),
                );
                for row in 0..gg {
                    let (p, a) = flat.row_slots(row);
                    prob.extend_from_slice(p);
                    alias.extend_from_slice(a);
                }
            }
        }
        let gg64 = gg as u64;
        let leaf_gran = grids[height as usize].granularity() as usize;
        let tree = FlatTree {
            g,
            gg,
            height,
            domain: self.hier.domain(),
            node_base,
            prob,
            alias,
            repaired,
            zone: u64::MAX - (u64::MAX % gg64),
            gg_mask: if gg64.is_power_of_two() {
                gg64 - 1
            } else {
                u64::MAX
            },
            zdiv: (0..gg as u32).map(|z| z / g as u32).collect(),
            zmod: (0..gg as u32).map(|z| z % g as u32).collect(),
            mod_g: (0..leaf_gran as u32).map(|r| r % g as u32).collect(),
            cell_side: grids.iter().map(Grid::cell_side).collect(),
            gran: grids.iter().map(|gr| gr.granularity() as usize).collect(),
        };
        *self
            .flat_tree
            .write()
            .unwrap_or_else(PoisonError::into_inner) = Some(Arc::new(tree));
        Ok(total)
    }

    /// True when a fused tree is installed and serving the fast path.
    pub fn is_flattened(&self) -> bool {
        self.flat_tree
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// The installed fused tree, if any (an `Arc` so a batch can hold it
    /// across draws while a concurrent cache mutation swaps it out).
    pub(crate) fn flat_tree(&self) -> Option<Arc<FlatTree>> {
        self.flat_tree
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn drop_flat_tree(&self) {
        *self
            .flat_tree
            .write()
            .unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// Batched [`Self::try_report`]: sanitize every point in `xs` in
    /// order, drawing from `rng` exactly as the equivalent sequence of
    /// single calls would — a batch of size 1 is bit-identical to one
    /// `try_report` (pinned by the determinism suite). The fused tree (or
    /// its absence) is resolved once for the whole batch, which is where
    /// the per-request lock and bounds overhead goes.
    ///
    /// # Errors
    /// The first per-node fault, if any; points before it were sampled
    /// but are not returned. Degradation-aware callers should use
    /// [`crate::ResilientMechanism::report_many`] instead.
    pub fn report_many<R: Rng + ?Sized>(
        &self,
        xs: &[Point],
        rng: &mut R,
    ) -> Result<Vec<Point>, MechanismError> {
        let tree = self.flat_tree();
        let mut out = Vec::with_capacity(xs.len());
        for &x in xs {
            out.push(
                self.descend_with(tree.as_deref(), x, rng)
                    .map(|o| o.point)
                    .map_err(|i| i.error)?,
            );
        }
        Ok(out)
    }

    /// The exact distribution over leaf cells produced for input `x`
    /// (including the uniform-resample rule for out-of-cell inputs).
    /// Exponential in the height — intended for tests and small analyses.
    pub fn exact_output_distribution(&self, x: Point) -> Vec<f64> {
        let x = clamp_into(self.hier.domain(), x);
        let leaf = self.leaf_grid();
        let mut out = vec![0.0; leaf.num_cells()];
        self.exact_rec(LevelCell::ROOT, x, 1.0, &mut out);
        out
    }

    fn exact_rec(&self, cell: LevelCell, x: Point, p: f64, out: &mut [f64]) {
        if p == 0.0 {
            return;
        }
        if cell.level == self.hier.height() {
            out[cell.id] += p;
            return;
        }
        let children = self.hier.children(cell);
        let channel = self.channel_for(cell);
        let gg = children.len();
        // Input row: the enclosing child when x is inside this cell,
        // otherwise the uniform mixture of all rows (lines 9-10).
        let ext = self.hier.extent(cell);
        let row: Vec<f64> = if ext.contains(x) || cell.level == 0 {
            let child = self.hier.enclosing_cell(x, cell.level + 1);
            channel.row(self.hier.local_index(child)).to_vec()
        } else {
            let mut mix = vec![0.0; gg];
            for u in 0..gg {
                for (z, m) in mix.iter_mut().enumerate() {
                    *m += channel.prob(u, z) / gg as f64;
                }
            }
            mix
        };
        for (zi, &pz) in row.iter().enumerate() {
            self.exact_rec(children[zi], x, p * pz, out);
        }
    }

    /// A *provable* upper bound on `ln(P(z|x)/P(z|x′))` for any output `z`,
    /// by per-level composition: level 1 uses the exact snapped distance
    /// (the root encloses everything); deeper levels use the diameter of a
    /// sub-grid's center set, which covers both in-cell and uniform-resample
    /// cases.
    pub fn composition_bound(&self, x: Point, xp: Point) -> f64 {
        let x = clamp_into(self.hier.domain(), x);
        let xp = clamp_into(self.hier.domain(), xp);
        let g = self.hier.granularity() as f64;
        let side = self.hier.domain().side();
        let l1 = self.hier.level_grid(1);
        let mut bound = self.budgets.level(1) * l1.snap(x).dist(l1.snap(xp));
        for level in 2..=self.hier.height() {
            // Sub-grid center diameter: (g-1)/g * parent side * sqrt(2).
            let parent_side = side / g.powi(level as i32 - 1);
            let diam = (g - 1.0) / g * parent_side * std::f64::consts::SQRT_2;
            bound += self.budgets.level(level) * diam;
        }
        bound
    }
}

fn clamp_into(domain: BBox, p: Point) -> Point {
    // Clamp into the half-open domain so `EnclosingCell` is total.
    let q = domain.clamp(p);
    Point::new(q.x.min(domain.max.x - 1e-12), q.y.min(domain.max.y - 1e-12))
}

impl Mechanism for MsmMechanism {
    fn report<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> Point {
        self.try_report(x, rng).expect(
            "MSM report failed; use try_report / ResilientMechanism \
                     for graceful degradation",
        )
    }

    fn name(&self) -> String {
        format!(
            "MSM(eps={}, g={}, h={}, rho={})",
            self.eps,
            self.granularity(),
            self.height(),
            self.rho
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoind_data::synth::SyntheticCity;
    use geoind_rng::SeededRng;

    fn tiny_msm(eps: f64) -> MsmMechanism {
        let domain = BBox::square(8.0);
        let prior = GridPrior::uniform(domain, 8);
        MsmMechanism::builder(domain, prior)
            .epsilon(eps)
            .granularity(2)
            .rho(0.7)
            .strategy(AllocationStrategy::FixedHeight(2))
            .build()
            .unwrap()
    }

    #[test]
    fn flat_table_audit_catches_a_corrupted_table_behind_a_valid_certificate() {
        use crate::flat::FlatChannel;
        let msm = tiny_msm(0.8);
        msm.try_channel_for(LevelCell::ROOT).expect("warm cache");
        let healthy = msm.audit_flat_tables();
        assert!(healthy.channels >= 1 && healthy.flattened >= 1);
        assert!(
            healthy.failures.is_empty() && healthy.worst_error <= 1e-9,
            "honest tables flagged: {healthy:?}"
        );
        // Swap in a flat table built from the wrong distribution (all mass
        // on output 0) behind the untouched matrix + certificate.
        let (cell, ch) = msm
            .cache_snapshot()
            .into_iter()
            .next()
            .expect("cached channel");
        let (n, m) = (ch.num_inputs(), ch.num_outputs());
        let mut wrong = vec![0.0; n * m];
        for r in 0..n {
            wrong[r * m] = 1.0;
        }
        let tampered = (*ch)
            .clone()
            .with_flat_override(FlatChannel::build(&wrong, n, m));
        msm.cache_insert(cell, Arc::new(tampered));
        // Re-certification still passes — the certificate vouches for the
        // matrix, which is untouched. Only the marginal audit can see it.
        assert!(msm.recertify_cache().iter().all(|(_, c)| c.passes()));
        let audit = msm.audit_flat_tables();
        assert!(
            audit.failures.len() == 1 && audit.failures[0].0 == cell,
            "corrupted table not flagged: {audit:?}"
        );
        assert!(audit.worst_error > 0.05, "error too small: {audit:?}");
    }

    #[test]
    fn flatten_installs_fused_tree_with_identical_bits() {
        // The fused flattened walk must consume the same randomness and
        // return the same leaf as the per-level cache path, draw for draw.
        let unfused = tiny_msm(0.8);
        let fused = tiny_msm(0.8);
        let nodes = fused.flatten().expect("flatten");
        assert_eq!(nodes, 5, "1 root + 4 level-1 nodes");
        assert!(fused.is_flattened());
        assert!(!unfused.is_flattened());
        let mut rng_u = SeededRng::from_seed(0xF05E);
        let mut rng_f = SeededRng::from_seed(0xF05E);
        for i in 0..500 {
            let x = Point::new((i % 11) as f64 * 0.73, (i % 7) as f64 + 0.6);
            let a = unfused.report(x, &mut rng_u);
            let b = fused.report(x, &mut rng_f);
            assert_eq!(a.x.to_bits(), b.x.to_bits(), "request {i}");
            assert_eq!(a.y.to_bits(), b.y.to_bits(), "request {i}");
        }
    }

    #[test]
    fn report_many_matches_sequential_reports() {
        let msm = tiny_msm(0.9);
        msm.flatten().expect("flatten");
        let xs: Vec<Point> = (0..64)
            .map(|i| Point::new((i % 8) as f64 + 0.2, (i % 5) as f64 + 0.7))
            .collect();
        let mut rng_batch = SeededRng::from_seed(0xBA7C);
        let batch = msm.report_many(&xs, &mut rng_batch).expect("batch");
        let mut rng_seq = SeededRng::from_seed(0xBA7C);
        for (i, &x) in xs.iter().enumerate() {
            let z = msm.report(x, &mut rng_seq);
            assert_eq!(z.x.to_bits(), batch[i].x.to_bits(), "request {i}");
            assert_eq!(z.y.to_bits(), batch[i].y.to_bits(), "request {i}");
        }
    }

    #[test]
    fn cache_invalidation_drops_fused_tree() {
        // The fused tree is a projection of the admitted channels: any
        // cache mutation (clear, or an offline import replacing entries)
        // must drop it so it can never serve stale tables.
        let msm = tiny_msm(0.8);
        msm.flatten().expect("flatten");
        assert!(msm.is_flattened());
        let mut blob = Vec::new();
        msm.export_cache(&mut blob).expect("export");
        msm.clear_cache();
        assert!(!msm.is_flattened(), "clear_cache must drop the tree");
        msm.flatten().expect("re-flatten");
        assert!(msm.is_flattened());
        msm.import_cache(&mut blob.as_slice()).expect("import");
        assert!(!msm.is_flattened(), "import must drop the tree");
        // Still serves (unfused), and flattening works again.
        let mut rng = SeededRng::from_seed(3);
        let z = msm.report(Point::new(4.2, 4.2), &mut rng);
        assert!(msm.leaf_grid().domain().contains_closed(z));
        msm.flatten().expect("flatten after import");
        assert!(msm.is_flattened());
    }

    #[test]
    fn reports_land_on_leaf_centers() {
        let msm = tiny_msm(0.8);
        let leaf = msm.leaf_grid();
        let centers = leaf.centers();
        let mut rng = SeededRng::from_seed(1);
        for i in 0..200 {
            let x = Point::new((i % 8) as f64 + 0.1, (i % 7) as f64 + 0.3);
            let z = msm.report(x, &mut rng);
            assert!(
                centers.iter().any(|c| c.dist(z) < 1e-12),
                "{z:?} not a leaf center"
            );
        }
    }

    #[test]
    fn budget_sums_to_epsilon() {
        let msm = tiny_msm(0.6);
        assert!((msm.budgets().total() - 0.6).abs() < 1e-9);
        assert_eq!(msm.height(), 2);
        assert_eq!(msm.effective_granularity(), 4);
    }

    #[test]
    fn cache_fills_and_clears() {
        let msm = tiny_msm(0.8);
        assert_eq!(msm.cached_channels(), 0);
        let mut rng = SeededRng::from_seed(2);
        for _ in 0..50 {
            msm.report(Point::new(4.0, 4.0), &mut rng);
        }
        // Root channel plus at least one level-1 node.
        assert!(msm.cached_channels() >= 2);
        // Bounded by the number of internal nodes (1 + g²).
        assert!(msm.cached_channels() <= 5);
        msm.clear_cache();
        assert_eq!(msm.cached_channels(), 0);
    }

    #[test]
    fn exact_distribution_matches_sampling() {
        let msm = tiny_msm(1.0);
        let x = Point::new(1.3, 6.2);
        let exact = msm.exact_output_distribution(x);
        assert!((exact.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let leaf = msm.leaf_grid();
        let mut counts = vec![0usize; leaf.num_cells()];
        let mut rng = SeededRng::from_seed(3);
        let n = 200_000;
        for _ in 0..n {
            counts[leaf.cell_of(msm.report(x, &mut rng))] += 1;
        }
        for (cell, &p) in exact.iter().enumerate() {
            let f = counts[cell] as f64 / n as f64;
            assert!(
                (f - p).abs() < 0.01,
                "cell {cell}: empirical {f} vs exact {p}"
            );
        }
    }

    #[test]
    fn composition_bound_holds_on_exact_distributions() {
        // The end-to-end channel must satisfy the per-level composition
        // bound for every (x, x', z) triple — this is the mechanism's
        // privacy guarantee made checkable.
        let msm = tiny_msm(0.9);
        let leaf = msm.leaf_grid();
        let points: Vec<Point> = leaf.centers();
        let dists: Vec<Vec<f64>> = points
            .iter()
            .map(|x| msm.exact_output_distribution(*x))
            .collect();
        for (i, x) in points.iter().enumerate() {
            for (j, xp) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                let bound = msm.composition_bound(*x, *xp).exp();
                for z in 0..leaf.num_cells() {
                    let (a, b) = (dists[i][z], dists[j][z]);
                    if b > 1e-12 {
                        assert!(
                            a / b <= bound * (1.0 + 1e-6),
                            "triple ({i},{j},{z}): ratio {} > bound {bound}",
                            a / b
                        );
                    } else {
                        assert!(a < 1e-12, "support mismatch breaks GeoInd");
                    }
                }
            }
        }
    }

    #[test]
    fn more_budget_less_loss() {
        let domain = BBox::square(20.0);
        let data = SyntheticCity::austin_like().generate_with_size(20_000, 2_000);
        let prior = GridPrior::from_dataset(&data, 16);
        let mut rng = SeededRng::from_seed(11);
        let mut prev = f64::INFINITY;
        for eps in [0.1, 0.5, 1.5] {
            let msm = MsmMechanism::builder(domain, prior.clone())
                .epsilon(eps)
                .granularity(4)
                .build()
                .unwrap();
            let mut loss = 0.0;
            let n = 400;
            for k in 0..n {
                let x = data.checkins()[k * 7 % data.len()].location;
                loss += msm.report(x, &mut rng).dist(x);
            }
            loss /= n as f64;
            assert!(
                loss < prev * 1.15,
                "loss {loss} not (roughly) decreasing at eps={eps}"
            );
            prev = loss;
        }
    }

    #[test]
    fn missing_epsilon_rejected() {
        let domain = BBox::square(8.0);
        let prior = GridPrior::uniform(domain, 4);
        assert!(matches!(
            MsmMechanism::builder(domain, prior).build(),
            Err(MechanismError::BadParameter(_))
        ));
    }

    #[test]
    fn mismatched_domain_rejected() {
        let prior = GridPrior::uniform(BBox::square(10.0), 4);
        assert!(matches!(
            MsmMechanism::builder(BBox::square(8.0), prior)
                .epsilon(0.5)
                .build(),
            Err(MechanismError::BadParameter(_))
        ));
    }

    #[test]
    fn warm_started_channel_matches_cold_within_strict_tolerance() {
        // The donor-first schedule seeds every sibling solve with the
        // donor's exit basis. Warm starting may change the pivot path,
        // but the admitted channel must agree with a cold solve of the
        // same node within certify's strict tolerance, and must carry a
        // passing certificate — warm starts save work, never guarantees.
        let domain = BBox::square(8.0);
        let pts = (0..40).map(|i| {
            Point::new(
                0.3 + 7.4 * ((i * 13 % 40) as f64 / 40.0),
                0.3 + 7.4 * ((i * 29 % 40) as f64 / 40.0),
            )
        });
        let prior = GridPrior::from_points(domain, 8, pts);
        let msm = MsmMechanism::builder(domain, prior)
            .epsilon(0.8)
            .granularity(2)
            .strategy(AllocationStrategy::FixedHeight(3))
            .build()
            .unwrap();
        // Siblings live one level down from the root; the donor is the
        // lowest cell index, exactly as the precompute schedule picks it.
        let level1 = msm.children_of(LevelCell::ROOT);
        assert!(level1.len() >= 2, "need siblings at level 1");
        let donor = level1[0];
        let (_, donor_basis) = msm.build_channel_warm(donor, None, None).unwrap();
        for &sibling in &level1[1..] {
            let (cold, _) = msm.build_channel_warm(sibling, None, None).unwrap();
            let (warm, _) = msm
                .build_channel_warm(sibling, Some(&donor_basis), None)
                .unwrap();
            let cert = warm.certificate().expect("admitted channels are certified");
            assert!(
                cert.passes(),
                "warm-started channel failed admission: {cert:?}"
            );
            let tol = crate::certify::strict_tolerance(cold.num_inputs(), cold.num_outputs());
            for x in 0..cold.num_inputs() {
                for z in 0..cold.num_outputs() {
                    let (c, w) = (cold.prob(x, z), warm.prob(x, z));
                    assert!(
                        (c - w).abs() <= tol,
                        "warm vs cold diverged at ({x},{z}): {c} vs {w} (tol {tol:.3e})"
                    );
                }
            }
        }
    }

    #[test]
    fn caching_off_recomputes_but_same_distribution() {
        let domain = BBox::square(8.0);
        let prior = GridPrior::uniform(domain, 8);
        let build = |caching: bool| {
            MsmMechanism::builder(domain, prior.clone())
                .epsilon(0.8)
                .granularity(2)
                .strategy(AllocationStrategy::FixedHeight(2))
                .caching(caching)
                .build()
                .unwrap()
        };
        let with = build(true);
        let without = build(false);
        let x = Point::new(5.5, 2.5);
        let a = with.exact_output_distribution(x);
        let b = without.exact_output_distribution(x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9);
        }
        assert_eq!(without.cached_channels(), 0);
    }
}
