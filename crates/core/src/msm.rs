//! The Multi-Step Mechanism (paper Section 4, Algorithm 1).
//!
//! MSM walks a GeoInd-preserving hierarchical index (GIHI) from the virtual
//! root to a leaf. At each level it restricts the prior to the `g²` children
//! of the previously selected cell, solves (or fetches from cache) the
//! optimal mechanism over those `g²` logical locations with that level's
//! budget `ε_i`, and samples the next cell. The leaf-level sample is
//! reported. By sequential composition the whole walk satisfies GeoInd with
//! budget `Σ ε_i = ε`, while every LP is only `g²` locations large — this is
//! the paper's utility/scalability compromise.
//!
//! If the true location falls outside the selected cell at some level
//! (a privacy-mandated event), its logical location for that step is drawn
//! uniformly from the sub-grid (Algorithm 1, lines 9–10).
//!
//! The per-node channels depend only on `(node, ε_i, prior, d_Q)` — never on
//! the query — so they are memoized: a client answering thousands of queries
//! pays each LP once.

use crate::alloc::{AllocationStrategy, BudgetAllocator, LevelBudgets};
use crate::cache::ShardedCache;
use crate::certify::{Certificate, Verdict};
use crate::channel::Channel;
use crate::metrics::QualityMetric;
use crate::opt::{OptOptions, OptimalMechanism};
use crate::{Mechanism, MechanismError};
use geoind_data::prior::GridPrior;
use geoind_lp::simplex::Basis;
use geoind_rng::Rng;
use geoind_spatial::geom::{BBox, Point};
use geoind_spatial::grid::Grid;
use geoind_spatial::hier::{HierGrid, LevelCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, PoisonError};

/// Builder for [`MsmMechanism`].
#[derive(Debug, Clone)]
pub struct MsmBuilder {
    domain: BBox,
    prior: GridPrior,
    eps: Option<f64>,
    g: u32,
    rho: f64,
    metric: QualityMetric,
    strategy: AllocationStrategy,
    opt_options: OptOptions,
    caching: bool,
}

impl MsmBuilder {
    /// Total privacy budget `ε` (required).
    pub fn epsilon(mut self, eps: f64) -> Self {
        self.eps = Some(eps);
        self
    }

    /// Per-level grid granularity `g` (fan-out `g²`). Default 4.
    pub fn granularity(mut self, g: u32) -> Self {
        self.g = g;
        self
    }

    /// Target self-map probability `ρ` for the budget allocator.
    /// Default 0.8 (the paper's default).
    pub fn rho(mut self, rho: f64) -> Self {
        self.rho = rho;
        self
    }

    /// Quality metric `d_Q`. Default Euclidean.
    pub fn metric(mut self, metric: QualityMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Budget-allocation strategy. Default `Auto { max_height: 5 }`.
    pub fn strategy(mut self, strategy: AllocationStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Options forwarded to every per-node OPT solve.
    pub fn opt_options(mut self, opts: OptOptions) -> Self {
        self.opt_options = opts;
        self
    }

    /// Enable/disable the per-node channel cache (on by default; the off
    /// switch exists for the `abl-cache` ablation).
    pub fn caching(mut self, on: bool) -> Self {
        self.caching = on;
        self
    }

    /// Finalize.
    ///
    /// # Errors
    /// [`MechanismError::BadParameter`] when ε is missing/non-positive, the
    /// granularity is < 2, or the prior's domain disagrees with `domain`.
    pub fn build(self) -> Result<MsmMechanism, MechanismError> {
        let eps = self
            .eps
            .ok_or_else(|| MechanismError::BadParameter("epsilon not set".into()))?;
        if eps <= 0.0 {
            return Err(MechanismError::BadParameter(format!(
                "eps must be positive, got {eps}"
            )));
        }
        if self.g < 2 {
            return Err(MechanismError::BadParameter(format!(
                "granularity must be >= 2, got {}",
                self.g
            )));
        }
        let pd = self.prior.grid().domain();
        if (pd.min.dist(self.domain.min) > 1e-9) || (pd.max.dist(self.domain.max) > 1e-9) {
            return Err(MechanismError::BadParameter(
                "prior domain differs from mechanism domain".into(),
            ));
        }
        let allocator = BudgetAllocator::new(self.domain.side(), self.g, self.rho);
        let budgets = allocator.allocate(eps, self.strategy)?;
        let hier = HierGrid::new(self.domain, self.g, budgets.height());
        Ok(MsmMechanism {
            hier,
            budgets,
            prior: self.prior,
            metric: self.metric,
            eps,
            rho: self.rho,
            opt_options: self.opt_options,
            caching: self.caching,
            cache: ShardedCache::new("msm channel cache"),
            residual_watermark: Mutex::new((0.0, 0.0)),
            pivot_count: AtomicU64::new(0),
        })
    }
}

/// A completed MSM descent: the reported point plus whether any channel
/// sampled along the way was admitted via the certify→repair path rather
/// than certifying outright (the serving layer counts repaired service).
#[derive(Debug, Clone, Copy)]
pub struct DescentOutcome {
    /// The reported (sanitized) location.
    pub point: Point,
    /// True when at least one sampled channel carries a `Repaired` verdict.
    pub repaired: bool,
}

/// A failed MSM descent: the typed fault plus the cell the completed
/// levels had already selected.
///
/// `resume.level` levels of the per-level budget (`ε_1..ε_k`) were spent
/// on input-dependent sampling before the fault; a privacy-sound fallback
/// must continue from `resume` using only the remaining level budgets.
/// Faults at the root (`resume == LevelCell::ROOT`) happened before any
/// sampling, so the full budget is still available.
#[derive(Debug)]
pub struct DescentInterrupted {
    /// The cell selected by the levels that completed (`ROOT` when none
    /// did).
    pub resume: LevelCell,
    /// The fault that stopped the descent.
    pub error: MechanismError,
}

/// The multi-step mechanism over a hierarchical grid index.
#[derive(Debug)]
pub struct MsmMechanism {
    hier: HierGrid,
    budgets: LevelBudgets,
    prior: GridPrior,
    metric: QualityMetric,
    eps: f64,
    rho: f64,
    opt_options: OptOptions,
    caching: bool,
    /// Per-node channel memo: sharded by FNV over the cell key, with
    /// single-flight fills so concurrent misses of the same node run one
    /// LP solve (and one admission gate) between them.
    cache: ShardedCache<LevelCell, Channel>,
    /// Worst (primal, dual) LP residual seen across per-node solves —
    /// surfaced by `geoind precompute` and `geoind doctor`.
    residual_watermark: Mutex<(f64, f64)>,
    /// Total simplex pivots across per-node solves — the benchmark
    /// harness reads this to quantify what warm starts save.
    pivot_count: AtomicU64,
}

impl MsmMechanism {
    /// Start a builder over `domain` with a (fine-grained) global prior.
    pub fn builder(domain: BBox, prior: GridPrior) -> MsmBuilder {
        MsmBuilder {
            domain,
            prior,
            eps: None,
            g: 4,
            rho: 0.8,
            metric: QualityMetric::Euclidean,
            strategy: AllocationStrategy::default(),
            opt_options: OptOptions::default(),
            caching: true,
        }
    }

    /// Total privacy budget.
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Target self-map probability `ρ`.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Per-level grid granularity `g`.
    pub fn granularity(&self) -> u32 {
        self.hier.granularity()
    }

    /// Index height `h`.
    pub fn height(&self) -> u32 {
        self.hier.height()
    }

    /// Effective leaf granularity `g^h`.
    pub fn effective_granularity(&self) -> u32 {
        self.hier.effective_granularity(self.hier.height())
    }

    /// The per-level budgets chosen by the allocator.
    pub fn budgets(&self) -> &LevelBudgets {
        &self.budgets
    }

    /// The quality metric.
    pub fn metric(&self) -> QualityMetric {
        self.metric
    }

    /// The leaf-level grid (all possible reported locations are its cell
    /// centers).
    pub fn leaf_grid(&self) -> Grid {
        self.hier.level_grid(self.hier.height())
    }

    /// Number of per-node channels currently memoized.
    pub fn cached_channels(&self) -> usize {
        self.cache.len()
    }

    /// Drop all memoized channels.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Duplicate channel fills suppressed by the cache's single-flight
    /// discipline: each count is a concurrent fetch that would have paid a
    /// redundant LP solve under a plain read/solve/insert cache and was
    /// instead handed the winner's admitted channel.
    pub fn dedup_suppressed(&self) -> u64 {
        self.cache.dedup_suppressed()
    }

    /// Internal accessors for the offline precompute/persistence module.
    ///
    /// One gated, cached, optionally warm-started per-node solve through
    /// the regular single-flight path. The `basis_out` side channel
    /// captures the solve's exit basis only when this call actually ran
    /// the fill (a cache hit or a racing filler leaves it `None`).
    pub(crate) fn cache_fill_warm(
        &self,
        cell: LevelCell,
        warm: Option<&Basis>,
        basis_out: &mut Option<Basis>,
    ) -> Result<Arc<Channel>, MechanismError> {
        if !self.caching {
            let (ch, basis) = self.build_channel_warm(cell, warm)?;
            *basis_out = Some(basis);
            return Ok(Arc::new(ch));
        }
        self.cache.get_or_fill(cell, || {
            let (ch, basis) = self.build_channel_warm(cell, warm)?;
            *basis_out = Some(basis);
            Ok(ch)
        })
    }

    pub(crate) fn children_of(&self, parent: LevelCell) -> Vec<LevelCell> {
        self.hier.children(parent)
    }

    pub(crate) fn center_of(&self, cell: LevelCell) -> geoind_spatial::geom::Point {
        self.hier.center(cell)
    }

    pub(crate) fn cache_snapshot(&self) -> Vec<(LevelCell, Arc<Channel>)> {
        let mut v = self.cache.entries();
        v.sort_by_key(|(c, _)| (c.level, c.id));
        v
    }

    pub(crate) fn cache_insert(&self, cell: LevelCell, channel: Arc<Channel>) {
        self.cache.insert(cell, channel);
    }

    pub(crate) fn cache_get(&self, cell: LevelCell) -> Option<Arc<Channel>> {
        self.cache.get(&cell)
    }

    /// The optimal channel over the children of `parent` (level
    /// `parent.level + 1`), memoized when caching is enabled. Panicking
    /// convenience wrapper around [`Self::try_channel_for`].
    fn channel_for(&self, parent: LevelCell) -> Arc<Channel> {
        self.try_channel_for(parent).expect(
            "per-node channel construction failed; use try_report / \
                     ResilientMechanism for graceful degradation",
        )
    }

    /// The optimal channel over the children of `parent`, memoized when
    /// caching is enabled.
    ///
    /// # Errors
    /// [`MechanismError::LockPoisoned`] when the channel cache's lock was
    /// poisoned by a panic on another thread (the memoized channels can no
    /// longer be trusted); any [`MechanismError`] from the per-node OPT
    /// solve.
    pub fn try_channel_for(&self, parent: LevelCell) -> Result<Arc<Channel>, MechanismError> {
        if !self.caching {
            // Ablation path: no cache, no single-flight, a fresh gated
            // solve per fetch — and no `cache.lock.poisoned` exposure,
            // since no shared cache state is touched.
            return Ok(Arc::new(self.build_channel(parent)?));
        }
        self.cache
            .get_or_fill(parent, || self.build_channel(parent))
    }

    /// Solve the per-node OPT: `g²` child-cell centers, the global prior
    /// restricted to the node and renormalized (uniform when the node has
    /// zero mass), and the level budget.
    fn build_channel(&self, parent: LevelCell) -> Result<Channel, MechanismError> {
        self.build_channel_warm(parent, None).map(|(ch, _)| ch)
    }

    /// [`Self::build_channel`] with an optional warm-start basis from a
    /// sibling node's solve; also returns the exit basis so the parallel
    /// precompute can seed the rest of the level. Warm starting changes
    /// pivot counts, never the admitted channel: the engine falls back to
    /// a cold start on any mismatch and both paths exit at the same
    /// (deterministic) optimum, behind the same admission gate.
    pub(crate) fn build_channel_warm(
        &self,
        parent: LevelCell,
        warm: Option<&Basis>,
    ) -> Result<(Channel, Basis), MechanismError> {
        let children = self.hier.children(parent);
        let centers: Vec<Point> = children.iter().map(|c| self.hier.center(*c)).collect();
        let extents: Vec<BBox> = children.iter().map(|c| self.hier.extent(*c)).collect();
        let mut masses = self.prior.masses(&extents);
        let total: f64 = masses.iter().sum();
        if total <= 0.0 {
            masses = vec![1.0; masses.len()];
        }
        let level = parent.level + 1;
        let eps_i = self.budgets.level(level);
        let mut opts = self.opt_options.clone();
        opts.simplex.start_basis = warm.cloned();
        let opt = OptimalMechanism::solve_with(eps_i, &centers, &masses, self.metric, opts)?;
        let stats = opt.stats();
        self.pivot_count
            .fetch_add(stats.iterations as u64, Ordering::Relaxed);
        {
            let mut w = self
                .residual_watermark
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            w.0 = w.0.max(stats.primal_residual);
            w.1 = w.1.max(stats.dual_residual);
        }
        Ok((opt.channel().clone(), opt.basis().clone()))
    }

    /// Total simplex pivots performed across all per-node LP solves so
    /// far. The benchmark harness compares this between cold and
    /// warm-started precompute runs; warm starts change this number,
    /// never the admitted channels.
    pub fn lp_pivot_count(&self) -> u64 {
        self.pivot_count.load(Ordering::Relaxed)
    }

    /// Worst `(primal, dual)` LP residual observed across all per-node
    /// solves so far (both 0 before any solve ran).
    pub fn lp_residual_watermark(&self) -> (f64, f64) {
        *self
            .residual_watermark
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Re-certify every memoized channel against its level budget at the
    /// strict (post-repair) tolerance, without repairing anything. Returns
    /// one `(parent cell, certificate)` per cached channel; a `Quarantined`
    /// verdict means the cached channel must not be served — `geoind
    /// doctor` exits nonzero on any such entry.
    pub fn recertify_cache(&self) -> Vec<(LevelCell, Certificate)> {
        self.cache_snapshot()
            .into_iter()
            .map(|(cell, ch)| {
                let eps_i = self.budgets.level(cell.level + 1);
                let tol = crate::certify::strict_tolerance(ch.num_inputs(), ch.num_outputs());
                (cell, crate::certify::certify(&ch, eps_i, tol))
            })
            .collect()
    }

    /// Fallible form of [`Mechanism::report`]: the full hierarchical
    /// descent, surfacing any per-node construction or cache failure as a
    /// typed error instead of panicking.
    ///
    /// # Errors
    /// Any [`MechanismError`] raised while fetching or building a
    /// per-level channel.
    pub fn try_report<R: Rng + ?Sized>(
        &self,
        x: Point,
        rng: &mut R,
    ) -> Result<Point, MechanismError> {
        self.try_report_resumable(x, rng)
            .map(|o| o.point)
            .map_err(|i| i.error)
    }

    /// Like [`Self::try_report`], but a failure also carries *where the
    /// walk stopped*, so a fallback can resume the descent from the cell
    /// already selected instead of restarting — restarting would spend
    /// fresh budget on an input whose completed levels already consumed
    /// `ε_1..ε_k`. [`crate::ResilientMechanism`] builds its degradation
    /// ladder on this.
    ///
    /// A level's channel is fetched *before* any of that level's
    /// randomness is drawn, so on failure the levels up to
    /// `resume.level` are exactly the levels whose budget was spent.
    ///
    /// # Errors
    /// [`DescentInterrupted`] wrapping any [`MechanismError`] raised
    /// while fetching or building a per-level channel.
    pub fn try_report_resumable<R: Rng + ?Sized>(
        &self,
        x: Point,
        rng: &mut R,
    ) -> Result<DescentOutcome, DescentInterrupted> {
        let x = clamp_into(self.hier.domain(), x);
        let mut current = LevelCell::ROOT;
        let mut repaired = false;
        for _level in 1..=self.hier.height() {
            let children = self.hier.children(current);
            let channel = match self.try_channel_for(current) {
                Ok(c) => c,
                Err(error) => {
                    return Err(DescentInterrupted {
                        resume: current,
                        error,
                    })
                }
            };
            repaired |= channel
                .certificate()
                .is_some_and(|c| c.verdict == Verdict::Repaired);
            let ext = self.hier.extent(current);
            let input_idx = if ext.contains(x) {
                self.hier
                    .local_index(self.hier.enclosing_cell(x, current.level + 1))
            } else {
                rng.gen_range(0..children.len())
            };
            let z = channel.sample(input_idx, rng);
            current = children[z];
        }
        Ok(DescentOutcome {
            point: self.hier.center(current),
            repaired,
        })
    }

    /// The exact distribution over leaf cells produced for input `x`
    /// (including the uniform-resample rule for out-of-cell inputs).
    /// Exponential in the height — intended for tests and small analyses.
    pub fn exact_output_distribution(&self, x: Point) -> Vec<f64> {
        let x = clamp_into(self.hier.domain(), x);
        let leaf = self.leaf_grid();
        let mut out = vec![0.0; leaf.num_cells()];
        self.exact_rec(LevelCell::ROOT, x, 1.0, &mut out);
        out
    }

    fn exact_rec(&self, cell: LevelCell, x: Point, p: f64, out: &mut [f64]) {
        if p == 0.0 {
            return;
        }
        if cell.level == self.hier.height() {
            out[cell.id] += p;
            return;
        }
        let children = self.hier.children(cell);
        let channel = self.channel_for(cell);
        let gg = children.len();
        // Input row: the enclosing child when x is inside this cell,
        // otherwise the uniform mixture of all rows (lines 9-10).
        let ext = self.hier.extent(cell);
        let row: Vec<f64> = if ext.contains(x) || cell.level == 0 {
            let child = self.hier.enclosing_cell(x, cell.level + 1);
            channel.row(self.hier.local_index(child)).to_vec()
        } else {
            let mut mix = vec![0.0; gg];
            for u in 0..gg {
                for (z, m) in mix.iter_mut().enumerate() {
                    *m += channel.prob(u, z) / gg as f64;
                }
            }
            mix
        };
        for (zi, &pz) in row.iter().enumerate() {
            self.exact_rec(children[zi], x, p * pz, out);
        }
    }

    /// A *provable* upper bound on `ln(P(z|x)/P(z|x′))` for any output `z`,
    /// by per-level composition: level 1 uses the exact snapped distance
    /// (the root encloses everything); deeper levels use the diameter of a
    /// sub-grid's center set, which covers both in-cell and uniform-resample
    /// cases.
    pub fn composition_bound(&self, x: Point, xp: Point) -> f64 {
        let x = clamp_into(self.hier.domain(), x);
        let xp = clamp_into(self.hier.domain(), xp);
        let g = self.hier.granularity() as f64;
        let side = self.hier.domain().side();
        let l1 = self.hier.level_grid(1);
        let mut bound = self.budgets.level(1) * l1.snap(x).dist(l1.snap(xp));
        for level in 2..=self.hier.height() {
            // Sub-grid center diameter: (g-1)/g * parent side * sqrt(2).
            let parent_side = side / g.powi(level as i32 - 1);
            let diam = (g - 1.0) / g * parent_side * std::f64::consts::SQRT_2;
            bound += self.budgets.level(level) * diam;
        }
        bound
    }
}

fn clamp_into(domain: BBox, p: Point) -> Point {
    // Clamp into the half-open domain so `EnclosingCell` is total.
    let q = domain.clamp(p);
    Point::new(q.x.min(domain.max.x - 1e-12), q.y.min(domain.max.y - 1e-12))
}

impl Mechanism for MsmMechanism {
    fn report<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> Point {
        self.try_report(x, rng).expect(
            "MSM report failed; use try_report / ResilientMechanism \
                     for graceful degradation",
        )
    }

    fn name(&self) -> String {
        format!(
            "MSM(eps={}, g={}, h={}, rho={})",
            self.eps,
            self.granularity(),
            self.height(),
            self.rho
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoind_data::synth::SyntheticCity;
    use geoind_rng::SeededRng;

    fn tiny_msm(eps: f64) -> MsmMechanism {
        let domain = BBox::square(8.0);
        let prior = GridPrior::uniform(domain, 8);
        MsmMechanism::builder(domain, prior)
            .epsilon(eps)
            .granularity(2)
            .rho(0.7)
            .strategy(AllocationStrategy::FixedHeight(2))
            .build()
            .unwrap()
    }

    #[test]
    fn reports_land_on_leaf_centers() {
        let msm = tiny_msm(0.8);
        let leaf = msm.leaf_grid();
        let centers = leaf.centers();
        let mut rng = SeededRng::from_seed(1);
        for i in 0..200 {
            let x = Point::new((i % 8) as f64 + 0.1, (i % 7) as f64 + 0.3);
            let z = msm.report(x, &mut rng);
            assert!(
                centers.iter().any(|c| c.dist(z) < 1e-12),
                "{z:?} not a leaf center"
            );
        }
    }

    #[test]
    fn budget_sums_to_epsilon() {
        let msm = tiny_msm(0.6);
        assert!((msm.budgets().total() - 0.6).abs() < 1e-9);
        assert_eq!(msm.height(), 2);
        assert_eq!(msm.effective_granularity(), 4);
    }

    #[test]
    fn cache_fills_and_clears() {
        let msm = tiny_msm(0.8);
        assert_eq!(msm.cached_channels(), 0);
        let mut rng = SeededRng::from_seed(2);
        for _ in 0..50 {
            msm.report(Point::new(4.0, 4.0), &mut rng);
        }
        // Root channel plus at least one level-1 node.
        assert!(msm.cached_channels() >= 2);
        // Bounded by the number of internal nodes (1 + g²).
        assert!(msm.cached_channels() <= 5);
        msm.clear_cache();
        assert_eq!(msm.cached_channels(), 0);
    }

    #[test]
    fn exact_distribution_matches_sampling() {
        let msm = tiny_msm(1.0);
        let x = Point::new(1.3, 6.2);
        let exact = msm.exact_output_distribution(x);
        assert!((exact.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let leaf = msm.leaf_grid();
        let mut counts = vec![0usize; leaf.num_cells()];
        let mut rng = SeededRng::from_seed(3);
        let n = 200_000;
        for _ in 0..n {
            counts[leaf.cell_of(msm.report(x, &mut rng))] += 1;
        }
        for (cell, &p) in exact.iter().enumerate() {
            let f = counts[cell] as f64 / n as f64;
            assert!(
                (f - p).abs() < 0.01,
                "cell {cell}: empirical {f} vs exact {p}"
            );
        }
    }

    #[test]
    fn composition_bound_holds_on_exact_distributions() {
        // The end-to-end channel must satisfy the per-level composition
        // bound for every (x, x', z) triple — this is the mechanism's
        // privacy guarantee made checkable.
        let msm = tiny_msm(0.9);
        let leaf = msm.leaf_grid();
        let points: Vec<Point> = leaf.centers();
        let dists: Vec<Vec<f64>> = points
            .iter()
            .map(|x| msm.exact_output_distribution(*x))
            .collect();
        for (i, x) in points.iter().enumerate() {
            for (j, xp) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                let bound = msm.composition_bound(*x, *xp).exp();
                for z in 0..leaf.num_cells() {
                    let (a, b) = (dists[i][z], dists[j][z]);
                    if b > 1e-12 {
                        assert!(
                            a / b <= bound * (1.0 + 1e-6),
                            "triple ({i},{j},{z}): ratio {} > bound {bound}",
                            a / b
                        );
                    } else {
                        assert!(a < 1e-12, "support mismatch breaks GeoInd");
                    }
                }
            }
        }
    }

    #[test]
    fn more_budget_less_loss() {
        let domain = BBox::square(20.0);
        let data = SyntheticCity::austin_like().generate_with_size(20_000, 2_000);
        let prior = GridPrior::from_dataset(&data, 16);
        let mut rng = SeededRng::from_seed(11);
        let mut prev = f64::INFINITY;
        for eps in [0.1, 0.5, 1.5] {
            let msm = MsmMechanism::builder(domain, prior.clone())
                .epsilon(eps)
                .granularity(4)
                .build()
                .unwrap();
            let mut loss = 0.0;
            let n = 400;
            for k in 0..n {
                let x = data.checkins()[k * 7 % data.len()].location;
                loss += msm.report(x, &mut rng).dist(x);
            }
            loss /= n as f64;
            assert!(
                loss < prev * 1.15,
                "loss {loss} not (roughly) decreasing at eps={eps}"
            );
            prev = loss;
        }
    }

    #[test]
    fn missing_epsilon_rejected() {
        let domain = BBox::square(8.0);
        let prior = GridPrior::uniform(domain, 4);
        assert!(matches!(
            MsmMechanism::builder(domain, prior).build(),
            Err(MechanismError::BadParameter(_))
        ));
    }

    #[test]
    fn mismatched_domain_rejected() {
        let prior = GridPrior::uniform(BBox::square(10.0), 4);
        assert!(matches!(
            MsmMechanism::builder(BBox::square(8.0), prior)
                .epsilon(0.5)
                .build(),
            Err(MechanismError::BadParameter(_))
        ));
    }

    #[test]
    fn warm_started_channel_matches_cold_within_strict_tolerance() {
        // The donor-first schedule seeds every sibling solve with the
        // donor's exit basis. Warm starting may change the pivot path,
        // but the admitted channel must agree with a cold solve of the
        // same node within certify's strict tolerance, and must carry a
        // passing certificate — warm starts save work, never guarantees.
        let domain = BBox::square(8.0);
        let pts = (0..40).map(|i| {
            Point::new(
                0.3 + 7.4 * ((i * 13 % 40) as f64 / 40.0),
                0.3 + 7.4 * ((i * 29 % 40) as f64 / 40.0),
            )
        });
        let prior = GridPrior::from_points(domain, 8, pts);
        let msm = MsmMechanism::builder(domain, prior)
            .epsilon(0.8)
            .granularity(2)
            .strategy(AllocationStrategy::FixedHeight(3))
            .build()
            .unwrap();
        // Siblings live one level down from the root; the donor is the
        // lowest cell index, exactly as the precompute schedule picks it.
        let level1 = msm.children_of(LevelCell::ROOT);
        assert!(level1.len() >= 2, "need siblings at level 1");
        let donor = level1[0];
        let (_, donor_basis) = msm.build_channel_warm(donor, None).unwrap();
        for &sibling in &level1[1..] {
            let (cold, _) = msm.build_channel_warm(sibling, None).unwrap();
            let (warm, _) = msm.build_channel_warm(sibling, Some(&donor_basis)).unwrap();
            let cert = warm.certificate().expect("admitted channels are certified");
            assert!(
                cert.passes(),
                "warm-started channel failed admission: {cert:?}"
            );
            let tol = crate::certify::strict_tolerance(cold.num_inputs(), cold.num_outputs());
            for x in 0..cold.num_inputs() {
                for z in 0..cold.num_outputs() {
                    let (c, w) = (cold.prob(x, z), warm.prob(x, z));
                    assert!(
                        (c - w).abs() <= tol,
                        "warm vs cold diverged at ({x},{z}): {c} vs {w} (tol {tol:.3e})"
                    );
                }
            }
        }
    }

    #[test]
    fn caching_off_recomputes_but_same_distribution() {
        let domain = BBox::square(8.0);
        let prior = GridPrior::uniform(domain, 8);
        let build = |caching: bool| {
            MsmMechanism::builder(domain, prior.clone())
                .epsilon(0.8)
                .granularity(2)
                .strategy(AllocationStrategy::FixedHeight(2))
                .caching(caching)
                .build()
                .unwrap()
        };
        let with = build(true);
        let without = build(false);
        let x = Point::new(5.5, 2.5);
        let a = with.exact_output_distribution(x);
        let b = without.exact_output_distribution(x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9);
        }
        assert_eq!(without.cached_channels(), 0);
    }
}
