//! GeoInd-safe degradation ladder: never drop a request, never serve a
//! channel whose privacy we cannot certify.
//!
//! A production sanitization service must answer every request, but the
//! optimal path can fail at runtime: an LP hits its iteration budget or a
//! singular basis, the offline channel cache is corrupt, a cache lock is
//! poisoned. [`ResilientMechanism`] wraps [`MsmMechanism`] with a
//! three-tier ladder:
//!
//! | tier | mechanism | per-query guarantee |
//! |------|-----------|---------------------|
//! | 0 `Optimal` | MSM with per-node OPT channels | composition bound, `Σ ε_i = ε` |
//! | 1 `PerLevelLaplace` | planar Laplace per level at the same `ε_i` | `ε_i`-GeoInd per level ⇒ `ε`-GeoInd composed |
//! | 2 `FlatLaplace` | one planar Laplace at the *remaining* budget | `ε`-GeoInd |
//!
//! Planar Laplace is the GeoInd-safe floor because it satisfies ε-GeoInd
//! for **any** prior (Andrés et al.) — unlike OPT, whose guarantee rests
//! on an LP solve we may not be able to certify. Tier 1 preserves the
//! hierarchical output structure (reports are leaf-cell centers) by
//! sampling a continuous planar Laplace with the level budget, clamping
//! into the current cell, and descending into the enclosing child —
//! clamping and discretization are post-processing of an `ε_i`-GeoInd
//! mechanism, so the per-level guarantee is exact. Tier 2 drops structure
//! entirely and reports a continuous planar Laplace point.
//!
//! ## Budget accounting under mid-descent faults
//!
//! A fault can strike *after* the optimal walk has completed `k` levels —
//! and the fault event itself may be correlated with the walk's path
//! (e.g. one specific cell's cached channel is corrupt). Those `k` levels
//! already spent `ε_1..ε_k` on input-dependent sampling, so a fallback
//! that restarted from the root at the full budget would let the
//! observable (output, serving tier) leak up to `ε_1..ε_k` *plus* `ε` —
//! more than the configured budget. The ladder therefore never restarts:
//! [`MsmMechanism::try_report_resumable`] reports the cell the completed
//! levels selected, tier 1 **continues the descent from that cell** using
//! only the remaining level budgets `ε_{k+1}..ε_h`, and tier 2 serves a
//! flat planar Laplace at their sum. Whatever the fault pattern — even an
//! adversarially path-correlated one — the total spend on any input is at
//! most `Σ ε_i = ε`, so the per-request tier can be exposed safely.
//! Root-level faults (`k = 0`) occur before any sampling and naturally
//! get the whole budget.
//!
//! ## When each rung serves
//!
//! Degradation is *per report* and triggered only by typed
//! [`MechanismError`]s — panics are bugs, not control flow. Tier 1 is the
//! automatic fallback whenever its samplers exist; it is pure sampling
//! plus grid geometry and cannot itself fail at report time. Tier 2
//! serves automatically only when tier 1 was ruled out **before any
//! request** — the hierarchy geometry or per-level budgets failed
//! validation at construction, or the operator opted down with
//! [`ResilientMechanism::without_per_level_fallback`] — a decision that
//! is input-independent by construction. [`ResilientMechanism::report_flat`]
//! remains as the explicit floor entry point.
//!
//! Which tier served each request is counted in cheap atomic counters
//! ([`ResilientMechanism::served_by_tier`]) and summarized by
//! [`DegradationReport`], so operators can see when and why the optimal
//! path was bypassed.

use crate::msm::{DescentInterrupted, DescentOutcome, FlatTree, MsmBuilder, MsmMechanism};
use crate::planar_laplace::PlanarLaplace;
use crate::{Mechanism, MechanismError};
use geoind_rng::Rng;
use geoind_spatial::geom::{BBox, Point};
use geoind_spatial::hier::{HierGrid, LevelCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Which rung of the degradation ladder served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// MSM with per-node OPT channels (full utility).
    Optimal,
    /// Per-level planar Laplace at the same per-level budgets
    /// (hierarchical structure kept, OPT utility lost).
    PerLevelLaplace,
    /// One flat planar Laplace at the remaining budget (structure lost too).
    FlatLaplace,
}

impl Tier {
    /// All tiers, best first.
    pub const ALL: [Tier; 3] = [Tier::Optimal, Tier::PerLevelLaplace, Tier::FlatLaplace];

    /// Ladder position: 0 is the optimal tier.
    pub fn index(self) -> usize {
        match self {
            Tier::Optimal => 0,
            Tier::PerLevelLaplace => 1,
            Tier::FlatLaplace => 2,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tier::Optimal => write!(f, "optimal"),
            Tier::PerLevelLaplace => write!(f, "per-level-laplace"),
            Tier::FlatLaplace => write!(f, "flat-laplace"),
        }
    }
}

/// Tier-1 fallback: the MSM descent with every per-node OPT channel
/// replaced by a continuous planar Laplace at that level's budget.
///
/// At each level the true location is clamped into the current cell,
/// perturbed by a planar Laplace with budget `ε_i`, clamped back into the
/// cell, and the enclosing child becomes the next cell. Clamping and
/// child-snapping are deterministic post-processing of an `ε_i`-GeoInd
/// mechanism, so each step is `ε_i`-GeoInd and the walk composes to
/// `Σ ε_i = ε` exactly like the optimal descent. The walk can start at
/// any cell — [`Self::report_from`] continues a partially completed
/// optimal descent spending only the remaining levels' budgets.
#[derive(Debug)]
struct PerLevelLaplace {
    hier: HierGrid,
    /// One sampler per level, index 0 = level 1.
    levels: Vec<PlanarLaplace>,
}

impl PerLevelLaplace {
    /// Validate the geometry and budgets; `None` means tier 1 cannot be
    /// offered and the ladder's automatic floor is the flat tier.
    fn new(hier: HierGrid, budgets: &[f64]) -> Option<Self> {
        let side = hier.domain().side();
        let geometry_ok = side.is_finite() && side > 0.0 && hier.height() >= 1;
        let budgets_ok = budgets.len() == hier.height() as usize
            && budgets.iter().all(|b| b.is_finite() && *b > 0.0);
        if !geometry_ok || !budgets_ok {
            return None;
        }
        let levels = budgets.iter().map(|&e| PlanarLaplace::new(e)).collect();
        Some(Self { hier, levels })
    }

    /// Continue the descent from `start` down to a leaf, spending only
    /// the budgets of levels `start.level + 1 ..= height`.
    fn report_from<R: Rng + ?Sized>(&self, start: LevelCell, x: Point, rng: &mut R) -> Point {
        let x = clamp_into(self.hier.domain(), x);
        let mut current = start;
        while current.level < self.hier.height() {
            let pl = &self.levels[current.level as usize];
            let ext = self.hier.extent(current);
            // Out-of-cell inputs are clamped to the cell border (a pure
            // function of x, so still post-processing of the PL sample).
            let centered = clamp_into(ext, x);
            let z = clamp_into(ext, pl.report_continuous(centered, rng));
            current = self.hier.enclosing_cell(z, current.level + 1);
        }
        self.hier.center(current)
    }
}

fn clamp_into(domain: BBox, p: Point) -> Point {
    // Clamp into the half-open box so `enclosing_cell` is total.
    let q = domain.clamp(p);
    Point::new(q.x.min(domain.max.x - 1e-12), q.y.min(domain.max.y - 1e-12))
}

/// Per-tier service counts plus the most recent degradation cause.
#[derive(Debug, Clone)]
pub struct DegradationReport {
    /// Reports served by each tier, indexed by [`Tier::index`].
    pub served_by_tier: [u64; 3],
    /// Tier-0 reports whose descent sampled at least one channel that the
    /// admission gate had to repair before certifying (see [`crate::certify`]).
    /// A subset of `served_by_tier[0]` — these requests were still served
    /// with a passing certificate.
    pub served_repaired: u64,
    /// Reports whose optimal descent was refused because a channel failed
    /// post-repair re-certification ([`MechanismError::ChannelQuarantined`]).
    /// Each such request was served by a closed-form lower tier instead —
    /// a subset of `degraded()`.
    pub quarantined: u64,
    /// Duplicate channel fills suppressed by the cache's single-flight
    /// discipline: concurrent misses of one node that were handed the
    /// winning solve's channel instead of each paying a redundant LP
    /// solve (see [`crate::MsmMechanism::dedup_suppressed`]).
    pub dedup_suppressed: u64,
    /// Tier-0 reports served by the fused flattened-tree walk (the alias
    /// tables built at admission, see [`crate::MsmMechanism::flatten`])
    /// rather than the per-level channel-cache path. A subset of
    /// `served_by_tier[0]`.
    pub sampled_flat: u64,
    /// Human-readable cause of the most recent degradation, if any.
    pub last_fault: Option<String>,
}

impl DegradationReport {
    /// Total reports issued (the counters always account for 100% of them).
    pub fn total(&self) -> u64 {
        self.served_by_tier.iter().sum()
    }

    /// Reports *not* served by the optimal tier.
    pub fn degraded(&self) -> u64 {
        self.served_by_tier[1] + self.served_by_tier[2]
    }

    /// Stable single-line log form, `key=value` separated by single
    /// spaces. The format is pinned by a test — operators grep and parse
    /// these lines, so changing it is a breaking change.
    pub fn log_line(&self) -> String {
        format!(
            "degradation optimal={} per-level={} flat={} total={} degraded={} \
             repaired={} quarantined={} dedup={} sampled_flat={}",
            self.served_by_tier[0],
            self.served_by_tier[1],
            self.served_by_tier[2],
            self.total(),
            self.degraded(),
            self.served_repaired,
            self.quarantined,
            self.dedup_suppressed,
            self.sampled_flat,
        )
    }
}

impl std::fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "# degradation report")?;
        for tier in Tier::ALL {
            writeln!(
                f,
                "#   served by {tier:<17}: {}",
                self.served_by_tier[tier.index()]
            )?;
        }
        write!(f, "#   total: {}", self.total())?;
        write!(
            f,
            "\n#   served via repaired channels: {}\n#   quarantined: {}\
             \n#   duplicate fills suppressed: {}\
             \n#   served by the fused flattened walk: {}",
            self.served_repaired, self.quarantined, self.dedup_suppressed, self.sampled_flat
        )?;
        if let Some(fault) = &self.last_fault {
            write!(f, "\n#   last fault: {fault}")?;
        }
        Ok(())
    }
}

/// [`Mechanism`] wrapper that guarantees `report()` is **total**: it
/// always returns a point, never panics on a mechanism fault, and never
/// exceeds the configured ε across the levels that actually sampled —
/// including when a fault strikes mid-descent (see the module docs on
/// budget accounting). See the module docs for the ladder.
#[derive(Debug)]
pub struct ResilientMechanism {
    msm: MsmMechanism,
    /// `None` when the hierarchy geometry or budgets failed validation
    /// (or the operator opted down): degraded requests then go flat.
    fallback: Option<PerLevelLaplace>,
    /// Flat sampler at the full composed ε, for the explicit
    /// [`Self::report_flat`] floor.
    flat: PlanarLaplace,
    /// Flat samplers for serving after a partial descent: index `k` holds
    /// a planar Laplace at `Σ_{i>k} ε_i`, the budget still unspent after
    /// `k` completed levels (index 0 = the full ε). Empty when the
    /// budgets failed validation.
    flat_by_resume: Vec<PlanarLaplace>,
    served: [AtomicU64; 3],
    /// Tier-0 serves whose descent used at least one gate-repaired channel.
    served_repaired: AtomicU64,
    /// Tier-0 serves answered by the fused flattened-tree walk.
    sampled_flat: AtomicU64,
    /// Requests refused the optimal path by a quarantine verdict.
    quarantined: AtomicU64,
    last_fault: Mutex<Option<String>>,
}

/// Does the error chain contain a quarantine verdict? The ladder counts
/// these separately: they mean a channel actively failed re-certification,
/// not that infrastructure (LP budget, cache lock) merely hiccuped.
fn is_quarantine(e: &MechanismError) -> bool {
    match e {
        MechanismError::ChannelQuarantined { .. } => true,
        MechanismError::Degraded { source, .. } => is_quarantine(source),
        _ => false,
    }
}

impl ResilientMechanism {
    /// Wrap a configured [`MsmBuilder`]; the fallback tiers reuse the
    /// budgets the builder's allocator chose.
    ///
    /// # Errors
    /// Any [`MechanismError`] from [`MsmBuilder::build`] — construction is
    /// not degradable because the ladder's budgets come from it. (Build
    /// the builder with a known-good configuration; per-report faults are
    /// what the ladder absorbs.)
    pub fn from_builder(builder: MsmBuilder) -> Result<Self, MechanismError> {
        Ok(Self::new(builder.build()?))
    }

    /// Wrap an already-built [`MsmMechanism`]. If the hierarchy geometry
    /// or per-level budgets fail validation here, tier 1 is unavailable
    /// and every degraded request is served by the flat floor — the
    /// decision is made once, before any request, so it is
    /// input-independent.
    pub fn new(msm: MsmMechanism) -> Self {
        let hier = HierGrid::new(msm.leaf_grid().domain(), msm.granularity(), msm.height());
        let budgets = msm.budgets().budgets();
        let fallback = PerLevelLaplace::new(hier, budgets);
        let flat = PlanarLaplace::new(msm.epsilon());
        let flat_by_resume = if budgets.iter().all(|b| b.is_finite() && *b > 0.0) {
            (0..budgets.len())
                .map(|k| PlanarLaplace::new(budgets[k..].iter().sum()))
                .collect()
        } else {
            Vec::new()
        };
        Self {
            msm,
            fallback,
            flat,
            flat_by_resume,
            served: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            served_repaired: AtomicU64::new(0),
            sampled_flat: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            last_fault: Mutex::new(None),
        }
    }

    /// Drop tier 1 from the ladder: every degraded request is served by
    /// the flat planar-Laplace floor. An operator opt-down (e.g. when the
    /// hierarchical fallback itself is under suspicion); the same state
    /// is entered automatically when [`Self::new`] finds the fallback
    /// geometry or budgets invalid.
    pub fn without_per_level_fallback(mut self) -> Self {
        self.fallback = None;
        self
    }

    /// The wrapped optimal-path mechanism.
    pub fn msm(&self) -> &MsmMechanism {
        &self.msm
    }

    /// Reports served by each tier so far, indexed by [`Tier::index`].
    pub fn served_by_tier(&self) -> [u64; 3] {
        [
            self.served[0].load(Ordering::Relaxed),
            self.served[1].load(Ordering::Relaxed),
            self.served[2].load(Ordering::Relaxed),
        ]
    }

    /// Tier-0 reports served through at least one gate-repaired channel.
    pub fn served_repaired(&self) -> u64 {
        self.served_repaired.load(Ordering::Relaxed)
    }

    /// Reports refused the optimal path by a quarantine verdict.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Tier-0 reports served by the fused flattened-tree walk.
    pub fn sampled_flat(&self) -> u64 {
        self.sampled_flat.load(Ordering::Relaxed)
    }

    /// Flatten the wrapped MSM's admitted channels into the fused serving
    /// tree (see [`MsmMechanism::flatten`]). Until this succeeds — or if
    /// the cache is later invalidated — tier 0 serves through the
    /// per-level channel-cache path instead; both paths consume identical
    /// randomness, so the outputs are bit-identical either way.
    ///
    /// # Errors
    /// Propagates the wrapped mechanism's flattening failure (a channel
    /// solve failed, or the admission-time alias build degraded); the
    /// ladder keeps serving on the unfused path.
    pub fn flatten(&self) -> Result<usize, MechanismError> {
        self.msm.flatten()
    }

    /// Snapshot the counters and the most recent degradation cause.
    pub fn degradation_report(&self) -> DegradationReport {
        DegradationReport {
            served_by_tier: self.served_by_tier(),
            served_repaired: self.served_repaired(),
            quarantined: self.quarantined(),
            dedup_suppressed: self.msm.dedup_suppressed(),
            sampled_flat: self.sampled_flat(),
            last_fault: self
                .last_fault
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        }
    }

    fn record(&self, tier: Tier, fault: Option<&MechanismError>) {
        self.served[tier.index()].fetch_add(1, Ordering::Relaxed);
        if let Some(e) = fault {
            let mut chain = e.to_string();
            let mut src = std::error::Error::source(e);
            while let Some(s) = src {
                chain.push_str(": ");
                chain.push_str(&s.to_string());
                src = s.source();
            }
            *self
                .last_fault
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(format!("{chain} -> {tier}"));
        }
    }

    /// Sanitize `x`, degrading through the ladder on typed faults. Returns
    /// the reported point and the tier that produced it.
    ///
    /// On a mid-descent fault the fallback *continues* from the cell the
    /// completed levels selected, spending only the remaining level
    /// budgets — never restarting — so the total spend stays within ε
    /// even when the fault is correlated with the descent path (module
    /// docs, "Budget accounting under mid-descent faults").
    ///
    /// The same `rng` drives whichever tier serves, consuming randomness
    /// only for the sampling that actually happens — with a fixed seed and
    /// a fixed (count-based) fault schedule the output stream is
    /// bit-deterministic.
    pub fn report_with_tier<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> (Point, Tier) {
        let tree = self.msm.flat_tree();
        self.serve_one(tree.as_deref(), x, rng)
    }

    /// Sanitize a batch with one fused-tree resolution for the whole
    /// slice: each point is served exactly as [`Self::report_with_tier`]
    /// would, in order, from the same `rng` — a batch of one is
    /// bit-identical to a single call, and the counters account for every
    /// element.
    pub fn report_many<R: Rng + ?Sized>(&self, xs: &[Point], rng: &mut R) -> Vec<(Point, Tier)> {
        let tree = self.msm.flat_tree();
        xs.iter()
            .map(|&x| self.serve_one(tree.as_deref(), x, rng))
            .collect()
    }

    /// Serve one request against an already-resolved fused tree (or the
    /// unfused cache path when `None`). The single body behind both
    /// [`Self::report_with_tier`] and [`Self::report_many`].
    fn serve_one<R: Rng + ?Sized>(
        &self,
        tree: Option<&FlatTree>,
        x: Point,
        rng: &mut R,
    ) -> (Point, Tier) {
        match self.msm.descend_with(tree, x, rng) {
            Ok(DescentOutcome { point, repaired }) => {
                if repaired {
                    self.served_repaired.fetch_add(1, Ordering::Relaxed);
                }
                if tree.is_some() {
                    self.sampled_flat.fetch_add(1, Ordering::Relaxed);
                }
                self.record(Tier::Optimal, None);
                (point, Tier::Optimal)
            }
            Err(DescentInterrupted { resume, error }) => {
                if is_quarantine(&error) {
                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                }
                let (z, tier) = match &self.fallback {
                    // Tier 1 cannot fail: it is pure sampling plus
                    // geometry. It resumes at `resume`, so only the
                    // budgets of the unfinished levels are spent.
                    Some(fb) => (fb.report_from(resume, x, rng), Tier::PerLevelLaplace),
                    // Tier 1 was ruled out before any request: serve flat
                    // at the budget still unspent after the partial
                    // descent (the full ε for root faults). The unindexed
                    // arm is only reachable when the budgets themselves
                    // failed validation, where no spend is accountable.
                    None => {
                        let pl = self
                            .flat_by_resume
                            .get(resume.level as usize)
                            .unwrap_or(&self.flat);
                        (pl.report_continuous(x, rng), Tier::FlatLaplace)
                    }
                };
                self.record(
                    tier,
                    Some(&MechanismError::Degraded {
                        tier,
                        source: Box::new(error),
                    }),
                );
                (z, tier)
            }
        }
    }

    /// Serve from the flat tier directly, at the full composed ε — the
    /// explicit floor for operators and tests pinning tier-2 behaviour.
    pub fn report_flat<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> Point {
        let z = self.flat.report_continuous(x, rng);
        self.record(Tier::FlatLaplace, None);
        z
    }
}

impl Mechanism for ResilientMechanism {
    fn report<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> Point {
        // A panic below this point would be a bug in the *fallback* path;
        // the ladder itself never converts errors into panics.
        self.report_with_tier(x, rng).0
    }

    fn name(&self) -> String {
        format!("Resilient({})", self.msm.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocationStrategy;
    use geoind_data::prior::GridPrior;
    use geoind_rng::SeededRng;

    fn resilient() -> ResilientMechanism {
        let domain = BBox::square(8.0);
        let prior = GridPrior::uniform(domain, 8);
        ResilientMechanism::from_builder(
            MsmMechanism::builder(domain, prior)
                .epsilon(0.8)
                .granularity(2)
                .strategy(AllocationStrategy::FixedHeight(2)),
        )
        .unwrap()
    }

    #[test]
    fn healthy_path_serves_tier0_only() {
        let r = resilient();
        let mut rng = SeededRng::from_seed(1);
        for i in 0..40 {
            let (_, tier) = r.report_with_tier(Point::new((i % 8) as f64, 3.0), &mut rng);
            assert_eq!(tier, Tier::Optimal);
        }
        assert_eq!(r.served_by_tier(), [40, 0, 0]);
        assert!(r.degradation_report().last_fault.is_none());
        // Healthy LP solves certify outright: nothing repaired, nothing
        // quarantined.
        assert_eq!(r.served_repaired(), 0);
        assert_eq!(r.quarantined(), 0);
    }

    #[test]
    fn valid_configuration_offers_tier1() {
        assert!(resilient().fallback.is_some());
    }

    #[test]
    fn per_level_fallback_lands_on_leaf_centers() {
        let r = resilient();
        let fb = r.fallback.as_ref().unwrap();
        let centers = r.msm().leaf_grid().centers();
        let mut rng = SeededRng::from_seed(2);
        for i in 0..200 {
            let x = Point::new((i % 8) as f64 + 0.3, (i % 7) as f64 + 0.6);
            let z = fb.report_from(LevelCell::ROOT, x, &mut rng);
            assert!(
                centers.iter().any(|c| c.dist(z) < 1e-12),
                "{z:?} not a leaf center"
            );
        }
    }

    #[test]
    fn resumed_fallback_stays_inside_the_resume_cell() {
        let r = resilient();
        let fb = r.fallback.as_ref().unwrap();
        let mut rng = SeededRng::from_seed(3);
        // Resume from each level-1 cell: the continuation must never
        // leave it, whatever the input — that is what caps its spend at
        // the remaining budget.
        for id in 0..4usize {
            let start = LevelCell { level: 1, id };
            let ext = fb.hier.extent(start);
            for i in 0..50 {
                let x = Point::new((i % 8) as f64 + 0.1, (i % 7) as f64 + 0.5);
                let z = fb.report_from(start, x, &mut rng);
                assert!(
                    ext.contains_closed(z),
                    "resumed walk escaped cell {id}: {z:?}"
                );
            }
        }
    }

    #[test]
    fn degenerate_budgets_disable_tier1() {
        let r = resilient();
        let hier = HierGrid::new(r.msm().leaf_grid().domain(), 2, 2);
        assert!(PerLevelLaplace::new(hier.clone(), &[0.4]).is_none()); // wrong count
        assert!(PerLevelLaplace::new(hier.clone(), &[0.4, f64::NAN]).is_none());
        assert!(PerLevelLaplace::new(hier.clone(), &[0.4, 0.0]).is_none());
        assert!(PerLevelLaplace::new(hier, &[0.4, 0.4]).is_some());
    }

    #[test]
    fn degradation_log_line_format_is_pinned() {
        // Operators parse this line; the format is a contract. Update the
        // expected string ONLY together with every downstream consumer.
        let report = DegradationReport {
            served_by_tier: [40, 2, 1],
            served_repaired: 5,
            quarantined: 1,
            dedup_suppressed: 2,
            sampled_flat: 9,
            last_fault: Some("irrelevant to the log line".into()),
        };
        assert_eq!(
            report.log_line(),
            "degradation optimal=40 per-level=2 flat=1 total=43 degraded=3 \
             repaired=5 quarantined=1 dedup=2 sampled_flat=9"
        );
        assert!(
            !report.log_line().contains('\n'),
            "log form must stay single-line"
        );
    }

    #[test]
    fn report_counts_account_for_all_queries() {
        let r = resilient();
        let mut rng = SeededRng::from_seed(3);
        for _ in 0..25 {
            r.report(Point::new(4.0, 4.0), &mut rng);
        }
        r.report_flat(Point::new(4.0, 4.0), &mut rng);
        let report = r.degradation_report();
        assert_eq!(report.total(), 26);
    }
}
