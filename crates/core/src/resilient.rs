//! GeoInd-safe degradation ladder: never drop a request, never serve a
//! channel whose privacy we cannot certify.
//!
//! A production sanitization service must answer every request, but the
//! optimal path can fail at runtime: an LP hits its iteration budget or a
//! singular basis, the offline channel cache is corrupt, a cache lock is
//! poisoned. [`ResilientMechanism`] wraps [`MsmMechanism`] with a
//! three-tier ladder:
//!
//! | tier | mechanism | per-query guarantee |
//! |------|-----------|---------------------|
//! | 0 `Optimal` | MSM with per-node OPT channels | composition bound, `Σ ε_i = ε` |
//! | 1 `PerLevelLaplace` | planar Laplace per level at the same `ε_i` | `ε_i`-GeoInd per level ⇒ `ε`-GeoInd composed |
//! | 2 `FlatLaplace` | one planar Laplace at the composed `ε` | `ε`-GeoInd |
//!
//! Planar Laplace is the GeoInd-safe floor because it satisfies ε-GeoInd
//! for **any** prior (Andrés et al.) — unlike OPT, whose guarantee rests
//! on an LP solve we may not be able to certify. Tier 1 preserves the
//! hierarchical output structure (reports are leaf-cell centers) by
//! sampling a continuous planar Laplace with the level budget, clamping
//! into the current cell, and descending into the enclosing child —
//! clamping and discretization are post-processing of an `ε_i`-GeoInd
//! mechanism, so the per-level guarantee is exact. Tier 2 drops structure
//! entirely and reports a continuous planar Laplace point at the full
//! composed budget.
//!
//! Degradation is *per report* and triggered only by typed
//! [`MechanismError`]s — panics are bugs, not control flow. Which tier
//! served each request is counted in cheap atomic counters
//! ([`ResilientMechanism::served_by_tier`]) and summarized by
//! [`DegradationReport`], so operators can see when and why the optimal
//! path was bypassed.

use crate::msm::{MsmBuilder, MsmMechanism};
use crate::planar_laplace::PlanarLaplace;
use crate::{Mechanism, MechanismError};
use geoind_rng::Rng;
use geoind_spatial::geom::{BBox, Point};
use geoind_spatial::hier::{HierGrid, LevelCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Which rung of the degradation ladder served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// MSM with per-node OPT channels (full utility).
    Optimal,
    /// Per-level planar Laplace at the same per-level budgets
    /// (hierarchical structure kept, OPT utility lost).
    PerLevelLaplace,
    /// One flat planar Laplace at the composed ε (structure lost too).
    FlatLaplace,
}

impl Tier {
    /// All tiers, best first.
    pub const ALL: [Tier; 3] = [Tier::Optimal, Tier::PerLevelLaplace, Tier::FlatLaplace];

    /// Ladder position: 0 is the optimal tier.
    pub fn index(self) -> usize {
        match self {
            Tier::Optimal => 0,
            Tier::PerLevelLaplace => 1,
            Tier::FlatLaplace => 2,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tier::Optimal => write!(f, "optimal"),
            Tier::PerLevelLaplace => write!(f, "per-level-laplace"),
            Tier::FlatLaplace => write!(f, "flat-laplace"),
        }
    }
}

/// Tier-1 fallback: the MSM descent with every per-node OPT channel
/// replaced by a continuous planar Laplace at that level's budget.
///
/// At each level the true location is clamped into the current cell,
/// perturbed by a planar Laplace with budget `ε_i`, clamped back into the
/// cell, and the enclosing child becomes the next cell. Clamping and
/// child-snapping are deterministic post-processing of an `ε_i`-GeoInd
/// mechanism, so each step is `ε_i`-GeoInd and the walk composes to
/// `Σ ε_i = ε` exactly like the optimal descent.
#[derive(Debug)]
struct PerLevelLaplace {
    hier: HierGrid,
    /// One sampler per level, index 0 = level 1.
    levels: Vec<PlanarLaplace>,
}

impl PerLevelLaplace {
    fn new(hier: HierGrid, budgets: &[f64]) -> Self {
        let levels = budgets.iter().map(|&e| PlanarLaplace::new(e)).collect();
        Self { hier, levels }
    }

    fn report<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> Point {
        let x = clamp_into(self.hier.domain(), x);
        let mut current = LevelCell::ROOT;
        for (i, pl) in self.levels.iter().enumerate() {
            let ext = self.hier.extent(current);
            // Out-of-cell inputs are clamped to the cell border (a pure
            // function of x, so still post-processing of the PL sample).
            let centered = clamp_into(ext, x);
            let z = clamp_into(ext, pl.report_continuous(centered, rng));
            current = self.hier.enclosing_cell(z, (i + 1) as u32);
        }
        self.hier.center(current)
    }
}

fn clamp_into(domain: BBox, p: Point) -> Point {
    // Clamp into the half-open box so `enclosing_cell` is total.
    let q = domain.clamp(p);
    Point::new(q.x.min(domain.max.x - 1e-12), q.y.min(domain.max.y - 1e-12))
}

/// Per-tier service counts plus the most recent degradation cause.
#[derive(Debug, Clone)]
pub struct DegradationReport {
    /// Reports served by each tier, indexed by [`Tier::index`].
    pub served_by_tier: [u64; 3],
    /// Human-readable cause of the most recent degradation, if any.
    pub last_fault: Option<String>,
}

impl DegradationReport {
    /// Total reports issued (the counters always account for 100% of them).
    pub fn total(&self) -> u64 {
        self.served_by_tier.iter().sum()
    }

    /// Reports *not* served by the optimal tier.
    pub fn degraded(&self) -> u64 {
        self.served_by_tier[1] + self.served_by_tier[2]
    }
}

impl std::fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "# degradation report")?;
        for tier in Tier::ALL {
            writeln!(
                f,
                "#   served by {tier:<17}: {}",
                self.served_by_tier[tier.index()]
            )?;
        }
        write!(f, "#   total: {}", self.total())?;
        if let Some(fault) = &self.last_fault {
            write!(f, "\n#   last fault: {fault}")?;
        }
        Ok(())
    }
}

/// [`Mechanism`] wrapper that guarantees `report()` is **total**: it
/// always returns a point, never panics on a mechanism fault, and never
/// exceeds the configured ε at the tier that actually served the request.
/// See the module docs for the ladder.
#[derive(Debug)]
pub struct ResilientMechanism {
    msm: MsmMechanism,
    fallback: PerLevelLaplace,
    flat: PlanarLaplace,
    served: [AtomicU64; 3],
    last_fault: Mutex<Option<String>>,
}

impl ResilientMechanism {
    /// Wrap a configured [`MsmBuilder`]; the fallback tiers reuse the
    /// budgets the builder's allocator chose.
    ///
    /// # Errors
    /// Any [`MechanismError`] from [`MsmBuilder::build`] — construction is
    /// not degradable because the ladder's budgets come from it. (Build
    /// the builder with a known-good configuration; per-report faults are
    /// what the ladder absorbs.)
    pub fn from_builder(builder: MsmBuilder) -> Result<Self, MechanismError> {
        Ok(Self::new(builder.build()?))
    }

    /// Wrap an already-built [`MsmMechanism`].
    pub fn new(msm: MsmMechanism) -> Self {
        let hier = HierGrid::new(msm.leaf_grid().domain(), msm.granularity(), msm.height());
        let fallback = PerLevelLaplace::new(hier, msm.budgets().budgets());
        let flat = PlanarLaplace::new(msm.epsilon());
        Self {
            msm,
            fallback,
            flat,
            served: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            last_fault: Mutex::new(None),
        }
    }

    /// The wrapped optimal-path mechanism.
    pub fn msm(&self) -> &MsmMechanism {
        &self.msm
    }

    /// Reports served by each tier so far, indexed by [`Tier::index`].
    pub fn served_by_tier(&self) -> [u64; 3] {
        [
            self.served[0].load(Ordering::Relaxed),
            self.served[1].load(Ordering::Relaxed),
            self.served[2].load(Ordering::Relaxed),
        ]
    }

    /// Snapshot the counters and the most recent degradation cause.
    pub fn degradation_report(&self) -> DegradationReport {
        DegradationReport {
            served_by_tier: self.served_by_tier(),
            last_fault: self
                .last_fault
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        }
    }

    fn record(&self, tier: Tier, fault: Option<&MechanismError>) {
        self.served[tier.index()].fetch_add(1, Ordering::Relaxed);
        if let Some(e) = fault {
            let mut chain = e.to_string();
            let mut src = std::error::Error::source(e);
            while let Some(s) = src {
                chain.push_str(": ");
                chain.push_str(&s.to_string());
                src = s.source();
            }
            *self
                .last_fault
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(format!("{chain} -> {tier}"));
        }
    }

    /// Sanitize `x`, degrading through the ladder on typed faults. Returns
    /// the reported point and the tier that produced it.
    ///
    /// The same `rng` drives whichever tier serves, consuming randomness
    /// only for the sampling that actually happens — with a fixed seed and
    /// a fixed (count-based) fault schedule the output stream is
    /// bit-deterministic.
    pub fn report_with_tier<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> (Point, Tier) {
        match self.msm.try_report(x, rng) {
            Ok(z) => {
                self.record(Tier::Optimal, None);
                (z, Tier::Optimal)
            }
            Err(e0) => {
                // Tier 1 cannot fail: it is pure sampling plus geometry.
                let z = self.fallback.report(x, rng);
                self.record(
                    Tier::PerLevelLaplace,
                    Some(&MechanismError::Degraded {
                        tier: Tier::PerLevelLaplace,
                        source: Box::new(e0),
                    }),
                );
                (z, Tier::PerLevelLaplace)
            }
        }
    }

    /// Serve from the flat tier directly — used when even the hierarchy's
    /// geometry is suspect (and by tests pinning tier-2 behaviour).
    pub fn report_flat<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> Point {
        let z = self.flat.report_continuous(x, rng);
        self.record(Tier::FlatLaplace, None);
        z
    }
}

impl Mechanism for ResilientMechanism {
    fn report<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> Point {
        // A panic below this point would be a bug in the *fallback* path;
        // the ladder itself never converts errors into panics.
        self.report_with_tier(x, rng).0
    }

    fn name(&self) -> String {
        format!("Resilient({})", self.msm.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocationStrategy;
    use geoind_data::prior::GridPrior;
    use geoind_rng::SeededRng;

    fn resilient() -> ResilientMechanism {
        let domain = BBox::square(8.0);
        let prior = GridPrior::uniform(domain, 8);
        ResilientMechanism::from_builder(
            MsmMechanism::builder(domain, prior)
                .epsilon(0.8)
                .granularity(2)
                .strategy(AllocationStrategy::FixedHeight(2)),
        )
        .unwrap()
    }

    #[test]
    fn healthy_path_serves_tier0_only() {
        let r = resilient();
        let mut rng = SeededRng::from_seed(1);
        for i in 0..40 {
            let (_, tier) = r.report_with_tier(Point::new((i % 8) as f64, 3.0), &mut rng);
            assert_eq!(tier, Tier::Optimal);
        }
        assert_eq!(r.served_by_tier(), [40, 0, 0]);
        assert!(r.degradation_report().last_fault.is_none());
    }

    #[test]
    fn per_level_fallback_lands_on_leaf_centers() {
        let r = resilient();
        let centers = r.msm().leaf_grid().centers();
        let mut rng = SeededRng::from_seed(2);
        for i in 0..200 {
            let x = Point::new((i % 8) as f64 + 0.3, (i % 7) as f64 + 0.6);
            let z = r.fallback.report(x, &mut rng);
            assert!(
                centers.iter().any(|c| c.dist(z) < 1e-12),
                "{z:?} not a leaf center"
            );
        }
    }

    #[test]
    fn report_counts_account_for_all_queries() {
        let r = resilient();
        let mut rng = SeededRng::from_seed(3);
        for _ in 0..25 {
            r.report(Point::new(4.0, 4.0), &mut rng);
        }
        r.report_flat(Point::new(4.0, 4.0), &mut rng);
        let report = r.degradation_report();
        assert_eq!(report.total(), 26);
    }
}
