//! The optimal GeoInd mechanism (Bordenabe et al., Eq. 3–6) over a discrete
//! location set, solved with the workspace LP engine.
//!
//! Given budget `ε`, prior `Π`, quality metric `d_Q` and locations
//! `X = Z`, OPT finds the row-stochastic channel `K` minimizing
//! `Σ Π(x)·K(x)(z)·d_Q(x,z)` subject to the ε-GeoInd constraints — the
//! best utility any GeoInd mechanism can achieve against that prior.
//!
//! The LP has `n²` variables and `n + n²(n−1)` constraints; it is solved
//! through its dual (see `geoind_lp::dual`), whose basis has only `n²` rows
//! and whose slack basis is immediately feasible.

use crate::channel::Channel;
use crate::metrics::QualityMetric;
use crate::spanner::Spanner;
use crate::{Mechanism, MechanismError};
use geoind_data::prior::GridPrior;
use geoind_lp::model::{Model, Op, Sense, SolveVia};
use geoind_lp::simplex::{Basis, SimplexOptions};
use geoind_rng::Rng;
use geoind_spatial::geom::Point;
use geoind_spatial::grid::Grid;
use geoind_spatial::kdtree::KdTree;

/// Which GeoInd constraint set to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstraintSet {
    /// All `n²(n−1)` pairwise constraints (exact OPT).
    Full,
    /// Constraints only on the edges of a greedy δ-spanner, tightened to
    /// `ε/δ` — an over-constrained but much smaller program whose solution
    /// still satisfies ε-GeoInd (utility is ≥ the exact optimum).
    Spanner {
        /// Spanner dilation δ ≥ 1.
        dilation: f64,
    },
}

/// Options for [`OptimalMechanism::solve_with`].
#[derive(Debug, Clone)]
pub struct OptOptions {
    /// LP path; `Dual` is right for every non-trivial size.
    pub via: SolveVia,
    /// Constraint generation strategy.
    pub constraints: ConstraintSet,
    /// Simplex tuning.
    pub simplex: SimplexOptions,
}

impl Default for OptOptions {
    fn default() -> Self {
        Self {
            via: SolveVia::Dual,
            constraints: ConstraintSet::Full,
            simplex: SimplexOptions::default(),
        }
    }
}

/// Size/effort statistics from the LP solve.
#[derive(Debug, Clone, Copy)]
pub struct SolveStats {
    /// Constraint rows in the primal formulation.
    pub rows: usize,
    /// Variables in the primal formulation.
    pub cols: usize,
    /// Simplex pivots performed.
    pub iterations: usize,
    /// `‖Ax − b‖∞` of the solution after one iterative-refinement pass on
    /// the final basis (primal feasibility).
    pub primal_residual: f64,
    /// Worst reduced-cost violation at the exit basis (dual feasibility).
    pub dual_residual: f64,
}

/// The optimal mechanism: a precomputed channel plus a nearest-location
/// snapper for continuous inputs.
#[derive(Debug, Clone)]
pub struct OptimalMechanism {
    eps: f64,
    metric: QualityMetric,
    channel: Channel,
    snapper: KdTree,
    stats: SolveStats,
    basis: Basis,
}

impl OptimalMechanism {
    /// Solve OPT with default options.
    ///
    /// # Examples
    /// ```
    /// use geoind_core::metrics::QualityMetric;
    /// use geoind_core::opt::OptimalMechanism;
    /// use geoind_spatial::geom::Point;
    ///
    /// // Two locations 1 km apart, uniform prior: the optimal flip
    /// // probability has the closed form 1 / (1 + e^eps).
    /// let pts = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
    /// let opt = OptimalMechanism::solve(1.0, &pts, &[0.5, 0.5], QualityMetric::Euclidean)
    ///     .unwrap();
    /// let flip = 1.0 / (1.0 + 1.0f64.exp());
    /// assert!((opt.channel().prob(0, 1) - flip).abs() < 1e-8);
    /// ```
    pub fn solve(
        eps: f64,
        locations: &[Point],
        prior: &[f64],
        metric: QualityMetric,
    ) -> Result<Self, MechanismError> {
        Self::solve_with(eps, locations, prior, metric, OptOptions::default())
    }

    /// Solve OPT on the cells of a grid with a matching prior (aggregating
    /// the prior to the grid's granularity when needed).
    pub fn on_grid(
        eps: f64,
        grid: &Grid,
        prior: &GridPrior,
        metric: QualityMetric,
    ) -> Result<Self, MechanismError> {
        let prior = if prior.grid().granularity() == grid.granularity() {
            prior.clone()
        } else {
            prior.aggregate_to(grid.granularity())
        };
        Self::solve(eps, &grid.centers(), prior.probs(), metric)
    }

    /// Solve OPT with explicit options.
    ///
    /// # Errors
    /// [`MechanismError::BadParameter`] for invalid inputs;
    /// [`MechanismError::Lp`] if the LP fails (it is feasible by
    /// construction, so this indicates an iteration limit).
    pub fn solve_with(
        eps: f64,
        locations: &[Point],
        prior: &[f64],
        metric: QualityMetric,
        opts: OptOptions,
    ) -> Result<Self, MechanismError> {
        if eps <= 0.0 {
            return Err(MechanismError::BadParameter(format!(
                "eps must be positive, got {eps}"
            )));
        }
        if locations.len() < 2 {
            return Err(MechanismError::BadParameter(
                "need at least 2 locations".into(),
            ));
        }
        if prior.len() != locations.len() {
            return Err(MechanismError::BadParameter(format!(
                "prior length {} != location count {}",
                prior.len(),
                locations.len()
            )));
        }
        let psum: f64 = prior.iter().sum();
        if prior.iter().any(|&p| p < 0.0 || !p.is_finite()) || psum <= 0.0 {
            return Err(MechanismError::BadParameter(
                "prior must be non-negative, nonzero".into(),
            ));
        }
        let n = locations.len();

        let mut model = Model::new(Sense::Minimize);
        // Variables k[x*n + z] with objective Π(x)·d_Q(x,z).
        for x in 0..n {
            let px = prior[x] / psum;
            for z in 0..n {
                model.add_var(px * metric.loss(locations[x], locations[z]));
            }
        }
        // Row-stochasticity: Σ_z k(x,z) = 1.
        for x in 0..n {
            let entries: Vec<(usize, f64)> = (0..n).map(|z| (x * n + z, 1.0)).collect();
            model.add_row(&entries, Op::Eq, 1.0);
        }
        // GeoInd constraints. Rows are scaled by e^{−ε·d} so every
        // coefficient stays in [−1, 1] (the rhs is 0, so scaling is free).
        let add_pair = |m: &mut Model, x: usize, xp: usize, e: f64| {
            let scale = (-e * locations[x].dist(locations[xp])).exp();
            for z in 0..n {
                m.add_row(&[(x * n + z, scale), (xp * n + z, -1.0)], Op::Le, 0.0);
            }
        };
        match opts.constraints {
            ConstraintSet::Full => {
                for x in 0..n {
                    for xp in 0..n {
                        if x != xp {
                            add_pair(&mut model, x, xp, eps);
                        }
                    }
                }
            }
            ConstraintSet::Spanner { dilation } => {
                if dilation < 1.0 {
                    return Err(MechanismError::BadParameter(format!(
                        "spanner dilation must be >= 1, got {dilation}"
                    )));
                }
                let spanner = Spanner::greedy(locations, dilation);
                for &(i, j) in spanner.edges() {
                    add_pair(&mut model, i, j, eps / dilation);
                    add_pair(&mut model, j, i, eps / dilation);
                }
            }
        }

        let stats_rows = model.num_rows();
        let stats_cols = model.num_vars();
        let solver_slack = opts.simplex.opt_tol;
        let sol = model.solve_with(opts.via, opts.simplex)?;
        // Mandatory admission gate: certify the raw simplex optimum against
        // the solve-time constraint set, lift it back onto the exact GeoInd
        // surface (the LP enforces row-scaled constraints, so the solver
        // tolerance must be un-scaled into an honest guarantee — see
        // Channel::geoind_repair), and re-certify strictly. A channel that
        // still violates is quarantined, never sampled.
        let spec = crate::certify::CertifySpec {
            eps,
            constraints: opts.constraints,
            solver_slack,
        };
        let channel = crate::certify::admit(
            Channel::new(locations.to_vec(), locations.to_vec(), sol.values),
            &spec,
            "opt.solve",
        )?;
        let snapper = KdTree::build(locations.iter().copied().enumerate().map(|(i, p)| (p, i)));
        Ok(Self {
            eps,
            metric,
            channel,
            snapper,
            stats: SolveStats {
                rows: stats_rows,
                cols: stats_cols,
                iterations: sol.iterations,
                primal_residual: sol.residual,
                dual_residual: sol.dual_residual,
            },
            basis: sol.basis,
        })
    }

    /// The optimal channel.
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// The privacy budget.
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// The quality metric the channel was optimized for.
    pub fn metric(&self) -> QualityMetric {
        self.metric
    }

    /// LP size/effort statistics.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// The optimal basis the solve exited with, in the standard-form
    /// column space of the formulation that actually ran (the dual, for
    /// the default [`SolveVia::Dual`] path). Feed it to a later solve via
    /// [`SimplexOptions::start_basis`] to warm-start a structurally
    /// identical LP — e.g. the sibling node of a hierarchical index, whose
    /// constraint matrix is the same and only the prior-dependent
    /// right-hand side differs.
    pub fn basis(&self) -> &Basis {
        &self.basis
    }

    /// Expected loss under a prior (defaults to the training objective when
    /// called with the same prior used at solve time).
    pub fn expected_loss(&self, prior: &[f64]) -> f64 {
        self.channel.expected_loss(prior, self.metric)
    }

    /// Index of the logical location nearest to a continuous point.
    pub fn snap_index(&self, x: Point) -> usize {
        self.snapper.nearest(x).expect("non-empty location set").1
    }
}

impl Mechanism for OptimalMechanism {
    fn report<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> Point {
        let idx = self.snap_index(x);
        self.channel.sample_location(idx, rng)
    }

    fn name(&self) -> String {
        format!("OPT(eps={}, n={})", self.eps, self.channel.num_inputs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoind_rng::SeededRng;
    use geoind_spatial::geom::BBox;

    fn line_points(n: usize, spacing: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect()
    }

    #[test]
    fn two_point_closed_form() {
        // Uniform prior, unit distance: optimum flips with prob 1/(1+e^eps).
        let eps = 1.0;
        let opt = OptimalMechanism::solve(
            eps,
            &line_points(2, 1.0),
            &[0.5, 0.5],
            QualityMetric::Euclidean,
        )
        .unwrap();
        let flip = 1.0 / (1.0 + eps.exp());
        assert!((opt.channel().prob(0, 1) - flip).abs() < 1e-8);
        assert!((opt.channel().prob(1, 0) - flip).abs() < 1e-8);
        assert!((opt.expected_loss(&[0.5, 0.5]) - flip).abs() < 1e-8);
    }

    #[test]
    fn channel_satisfies_geoind() {
        let grid = Grid::new(BBox::square(20.0), 3);
        let prior = GridPrior::uniform(BBox::square(20.0), 3);
        let opt = OptimalMechanism::on_grid(0.5, &grid, &prior, QualityMetric::Euclidean).unwrap();
        assert!(
            opt.channel().satisfies_geoind(0.5, 1e-6),
            "violation {}",
            opt.channel().geoind_violation(0.5)
        );
    }

    #[test]
    fn geoind_holds_for_any_prior_it_was_not_tuned_for() {
        // The remarkable OPT property (Section 2.3): tuned for one prior,
        // private for all. GeoInd is a property of the channel alone, so a
        // skewed-prior channel passes the same constraint check.
        let pts = line_points(4, 2.0);
        let skewed = [0.7, 0.1, 0.1, 0.1];
        let opt = OptimalMechanism::solve(0.4, &pts, &skewed, QualityMetric::Euclidean).unwrap();
        assert!(opt.channel().satisfies_geoind(0.4, 1e-6));
    }

    #[test]
    fn beats_or_matches_planar_laplace_utility() {
        // OPT is *optimal*: no GeoInd channel over the same locations can
        // do better; in particular a discretized PL cannot.
        let domain = BBox::square(20.0);
        let grid = Grid::new(domain, 4);
        let mut weights = vec![0.0; 16];
        weights[5] = 10.0;
        weights[6] = 5.0;
        weights[9] = 3.0;
        weights[0] = 1.0;
        let prior = GridPrior::from_weights(grid.clone(), weights);
        let eps = 0.3;
        let opt = OptimalMechanism::on_grid(eps, &grid, &prior, QualityMetric::Euclidean).unwrap();
        let opt_loss = opt.expected_loss(prior.probs());

        // Monte-Carlo the PL+remap loss under the same prior.
        let pl = crate::planar_laplace::PlanarLaplace::new(eps).with_grid_remap(grid.clone());
        let mut rng = SeededRng::from_seed(5);
        let mut pl_loss = 0.0;
        let trials = 3_000;
        for (cell, &p) in prior.probs().iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let x = grid.center_of(cell);
            let mut acc = 0.0;
            for _ in 0..trials {
                acc += pl.report(x, &mut rng).dist(x);
            }
            pl_loss += p * acc / trials as f64;
        }
        assert!(
            opt_loss <= pl_loss * 1.02,
            "OPT loss {opt_loss} should not exceed PL loss {pl_loss}"
        );
    }

    #[test]
    fn skewed_prior_beats_uniform_prior_utility() {
        // Tuning to a concentrated prior must give (weakly) better expected
        // loss under that prior than the channel tuned for uniform.
        let pts = Grid::new(BBox::square(10.0), 3).centers();
        let mut skewed = vec![0.01; 9];
        skewed[4] = 0.92;
        let tuned = OptimalMechanism::solve(0.3, &pts, &skewed, QualityMetric::Euclidean).unwrap();
        let generic =
            OptimalMechanism::solve(0.3, &pts, &[1.0 / 9.0; 9], QualityMetric::Euclidean).unwrap();
        let lt = tuned
            .channel()
            .expected_loss(&skewed, QualityMetric::Euclidean);
        let lg = generic
            .channel()
            .expected_loss(&skewed, QualityMetric::Euclidean);
        assert!(lt <= lg + 1e-8, "tuned {lt} vs generic {lg}");
    }

    #[test]
    fn spanner_variant_is_private_and_close() {
        let grid = Grid::new(BBox::square(20.0), 3);
        let prior = GridPrior::uniform(BBox::square(20.0), 3);
        let eps = 0.5;
        let exact =
            OptimalMechanism::on_grid(eps, &grid, &prior, QualityMetric::Euclidean).unwrap();
        let solve_spanner = |dilation: f64| {
            OptimalMechanism::solve_with(
                eps,
                &grid.centers(),
                prior.probs(),
                QualityMetric::Euclidean,
                OptOptions {
                    constraints: ConstraintSet::Spanner { dilation },
                    ..OptOptions::default()
                },
            )
            .unwrap()
        };
        let tight = solve_spanner(1.05);
        let loose = solve_spanner(1.5);
        // Still ε-GeoInd (the whole point of the spanner argument)...
        assert!(tight.channel().satisfies_geoind(eps, 1e-6));
        assert!(loose.channel().satisfies_geoind(eps, 1e-6));
        // ...with fewer constraints...
        assert!(loose.stats().rows < exact.stats().rows);
        // ...at a utility premium that shrinks as δ → 1 (the ε/δ budget
        // tightening is the price of the smaller program).
        let le = exact.expected_loss(prior.probs());
        let lt = tight.expected_loss(prior.probs());
        let ll = loose.expected_loss(prior.probs());
        assert!(
            lt >= le - 1e-8 && ll >= le - 1e-8,
            "spanner cannot beat the true optimum"
        );
        assert!(
            lt <= ll + 1e-8,
            "tighter dilation should not lose more ({lt} vs {ll})"
        );
        assert!(
            lt <= le * 1.35,
            "near-exact spanner loss {lt} too far above exact {le}"
        );
    }

    #[test]
    fn higher_eps_means_lower_loss() {
        let grid = Grid::new(BBox::square(20.0), 3);
        let prior = GridPrior::uniform(BBox::square(20.0), 3);
        let mut prev = f64::INFINITY;
        for eps in [0.1, 0.3, 0.6, 1.0] {
            let opt =
                OptimalMechanism::on_grid(eps, &grid, &prior, QualityMetric::Euclidean).unwrap();
            let loss = opt.expected_loss(prior.probs());
            assert!(loss <= prev + 1e-9, "loss not decreasing at eps={eps}");
            prev = loss;
        }
    }

    #[test]
    fn report_snaps_and_samples() {
        let grid = Grid::new(BBox::square(10.0), 2);
        let prior = GridPrior::uniform(BBox::square(10.0), 2);
        let opt = OptimalMechanism::on_grid(1.0, &grid, &prior, QualityMetric::Euclidean).unwrap();
        let mut rng = SeededRng::from_seed(9);
        let centers = grid.centers();
        for _ in 0..100 {
            let z = opt.report(Point::new(1.1, 2.3), &mut rng);
            assert!(centers.iter().any(|c| c.dist(z) < 1e-12));
        }
    }

    #[test]
    fn bad_parameters_rejected() {
        let pts = line_points(3, 1.0);
        assert!(matches!(
            OptimalMechanism::solve(0.0, &pts, &[0.3, 0.3, 0.4], QualityMetric::Euclidean),
            Err(MechanismError::BadParameter(_))
        ));
        assert!(matches!(
            OptimalMechanism::solve(0.5, &pts, &[0.5, 0.5], QualityMetric::Euclidean),
            Err(MechanismError::BadParameter(_))
        ));
        assert!(matches!(
            OptimalMechanism::solve(0.5, &pts[..1], &[1.0], QualityMetric::Euclidean),
            Err(MechanismError::BadParameter(_))
        ));
    }
}
