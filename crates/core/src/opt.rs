//! The optimal GeoInd mechanism (Bordenabe et al., Eq. 3–6) over a discrete
//! location set, solved with the workspace LP engine.
//!
//! Given budget `ε`, prior `Π`, quality metric `d_Q` and locations
//! `X = Z`, OPT finds the row-stochastic channel `K` minimizing
//! `Σ Π(x)·K(x)(z)·d_Q(x,z)` subject to the ε-GeoInd constraints — the
//! best utility any GeoInd mechanism can achieve against that prior.
//!
//! The LP has `n²` variables and `n + n²(n−1)` constraints; it is solved
//! through its dual (see `geoind_lp::dual`), whose basis has only `n²` rows
//! and whose slack basis is immediately feasible.

use crate::channel::Channel;
use crate::metrics::QualityMetric;
use crate::spanner::Spanner;
use crate::{Mechanism, MechanismError};
use geoind_data::prior::GridPrior;
use geoind_lp::dual::remap_dual_basis_after_le_append;
use geoind_lp::model::{Model, Op, Sense, SolveVia};
use geoind_lp::simplex::{Basis, SimplexOptions, WarmMode, VALUE_CLIP};
use geoind_lp::LpError;
use geoind_rng::Rng;
use geoind_spatial::geom::Point;
use geoind_spatial::grid::Grid;
use geoind_spatial::kdtree::KdTree;
use std::sync::Arc;

/// Which GeoInd constraint set to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstraintSet {
    /// All `n²(n−1)` pairwise constraints (exact OPT).
    Full,
    /// Constraints only on the edges of a greedy δ-spanner, tightened to
    /// `ε/δ` — an over-constrained but much smaller program whose solution
    /// still satisfies ε-GeoInd (utility is ≥ the exact optimum).
    Spanner {
        /// Spanner dilation δ ≥ 1.
        dilation: f64,
    },
}

/// Options for the delayed-constraint-generation (cutting-plane) solve
/// strategy: materialize only a seed subset of the GeoInd rows, solve,
/// scan the optimum for violated pairs with the same per-pair check
/// `certify` runs, append just those rows, warm-restart the simplex from
/// the previous exit basis, and iterate to a fixed point. The fixed point
/// satisfies *every* target constraint within the separation tolerance,
/// so this is an exact method, not an approximation — the admission gate
/// certifies it against the full target spec regardless.
#[derive(Debug, Clone, Copy)]
pub struct CutGenOptions {
    /// Use delayed constraint generation (the default). When disabled,
    /// every target row is materialized up front as before.
    pub enabled: bool,
    /// Dilation of the greedy spanner whose edges seed the working set
    /// when the target set is [`ConstraintSet::Full`] — the spanner edges
    /// are exactly the near-pair constraints that tend to be active at the
    /// optimum. Must be ≥ 1.
    pub seed_dilation: f64,
    /// Scaled-violation threshold above which a pair's rows are appended.
    /// Must sit above the solver's value-clipping noise
    /// ([`geoind_lp::simplex::VALUE_CLIP`]), or the loop would chase pairs
    /// whose rows the LP already satisfies up to truncation; the admission
    /// gate allows `4·(VALUE_CLIP + opt_tol) + …`, so the default
    /// (`VALUE_CLIP`) certifies the fixed point with a 4× margin.
    pub separation_tol: f64,
    /// Safety cap on solve rounds. Each round strictly grows the working
    /// set, so termination is guaranteed regardless; this bounds
    /// pathological float behavior.
    pub max_rounds: usize,
}

impl Default for CutGenOptions {
    fn default() -> Self {
        Self {
            enabled: true,
            seed_dilation: 1.2,
            separation_tol: VALUE_CLIP,
            max_rounds: 200,
        }
    }
}

/// Options for [`OptimalMechanism::solve_with`].
#[derive(Debug, Clone)]
pub struct OptOptions {
    /// LP path; `Dual` is right for every non-trivial size.
    pub via: SolveVia,
    /// Constraint generation strategy.
    pub constraints: ConstraintSet,
    /// Delayed-constraint-generation tuning.
    pub cutgen: CutGenOptions,
    /// A prebuilt greedy spanner shared across sibling solves (all nodes
    /// at one tree level share their local grid geometry, and
    /// `Spanner::greedy` is an O(n³) candidate scan — build it once per
    /// level, not once per node). Used when its vertex count and dilation
    /// match what this solve needs; otherwise a fresh spanner is built.
    pub shared_spanner: Option<Arc<Spanner>>,
    /// Simplex tuning.
    pub simplex: SimplexOptions,
}

impl Default for OptOptions {
    fn default() -> Self {
        Self {
            via: SolveVia::Dual,
            constraints: ConstraintSet::Full,
            cutgen: CutGenOptions::default(),
            shared_spanner: None,
            simplex: SimplexOptions::default(),
        }
    }
}

/// Size/effort statistics from the LP solve.
#[derive(Debug, Clone, Copy)]
pub struct SolveStats {
    /// Constraint rows in the primal formulation of the *target* program
    /// (equal to [`SolveStats::rows_total`]; kept under its historical
    /// name).
    pub rows: usize,
    /// Variables in the primal formulation.
    pub cols: usize,
    /// Simplex pivots performed, summed over all cut rounds.
    pub iterations: usize,
    /// Cut-generation rounds (LP solves) performed; 0 when cut generation
    /// was disabled and the target rows were materialized up front.
    pub cut_rounds: usize,
    /// Rows actually materialized in the final working LP — the seed rows
    /// plus every violated row the separation oracle appended.
    pub rows_active: usize,
    /// Rows the full target program would have (`n` stochasticity rows
    /// plus `n` GeoInd rows per target pair).
    pub rows_total: usize,
    /// `‖Ax − b‖∞` of the solution after one iterative-refinement pass on
    /// the final basis (primal feasibility).
    pub primal_residual: f64,
    /// Worst reduced-cost violation at the exit basis (dual feasibility).
    pub dual_residual: f64,
}

/// Reuse a level-shared spanner when it matches this solve's geometry and
/// dilation, otherwise build a fresh one. Siblings on a tree level share
/// congruent child grids, so the precompute schedule can build the greedy
/// spanner (O(n³)) once per level and hand it to every node solve.
fn reuse_or_build(
    shared: Option<&Arc<Spanner>>,
    locations: &[Point],
    dilation: f64,
) -> Arc<Spanner> {
    match shared {
        Some(s) if s.num_vertices() == locations.len() && s.dilation() == dilation => Arc::clone(s),
        _ => Arc::new(Spanner::greedy(locations, dilation)),
    }
}

/// The optimal mechanism: a precomputed channel plus a nearest-location
/// snapper for continuous inputs.
#[derive(Debug, Clone)]
pub struct OptimalMechanism {
    eps: f64,
    metric: QualityMetric,
    channel: Channel,
    snapper: KdTree,
    stats: SolveStats,
    basis: Basis,
}

impl OptimalMechanism {
    /// Solve OPT with default options.
    ///
    /// # Examples
    /// ```
    /// use geoind_core::metrics::QualityMetric;
    /// use geoind_core::opt::OptimalMechanism;
    /// use geoind_spatial::geom::Point;
    ///
    /// // Two locations 1 km apart, uniform prior: the optimal flip
    /// // probability has the closed form 1 / (1 + e^eps).
    /// let pts = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
    /// let opt = OptimalMechanism::solve(1.0, &pts, &[0.5, 0.5], QualityMetric::Euclidean)
    ///     .unwrap();
    /// let flip = 1.0 / (1.0 + 1.0f64.exp());
    /// assert!((opt.channel().prob(0, 1) - flip).abs() < 1e-8);
    /// ```
    pub fn solve(
        eps: f64,
        locations: &[Point],
        prior: &[f64],
        metric: QualityMetric,
    ) -> Result<Self, MechanismError> {
        Self::solve_with(eps, locations, prior, metric, OptOptions::default())
    }

    /// Solve OPT on the cells of a grid with a matching prior (aggregating
    /// the prior to the grid's granularity when needed).
    pub fn on_grid(
        eps: f64,
        grid: &Grid,
        prior: &GridPrior,
        metric: QualityMetric,
    ) -> Result<Self, MechanismError> {
        let prior = if prior.grid().granularity() == grid.granularity() {
            prior.clone()
        } else {
            prior.aggregate_to(grid.granularity())
        };
        Self::solve(eps, &grid.centers(), prior.probs(), metric)
    }

    /// Solve OPT with explicit options.
    ///
    /// # Errors
    /// [`MechanismError::BadParameter`] for invalid inputs;
    /// [`MechanismError::Lp`] if the LP fails (it is feasible by
    /// construction, so this indicates an iteration limit).
    pub fn solve_with(
        eps: f64,
        locations: &[Point],
        prior: &[f64],
        metric: QualityMetric,
        opts: OptOptions,
    ) -> Result<Self, MechanismError> {
        if eps <= 0.0 {
            return Err(MechanismError::BadParameter(format!(
                "eps must be positive, got {eps}"
            )));
        }
        if locations.len() < 2 {
            return Err(MechanismError::BadParameter(
                "need at least 2 locations".into(),
            ));
        }
        if prior.len() != locations.len() {
            return Err(MechanismError::BadParameter(format!(
                "prior length {} != location count {}",
                prior.len(),
                locations.len()
            )));
        }
        let psum: f64 = prior.iter().sum();
        if prior.iter().any(|&p| p < 0.0 || !p.is_finite()) || psum <= 0.0 {
            return Err(MechanismError::BadParameter(
                "prior must be non-negative, nonzero".into(),
            ));
        }
        let n = locations.len();

        // The ordered constraint pairs of the *target* program and their
        // per-row budget. Pair order is canonical and deterministic: scan
        // order for the full set, greedy edge order (both directions) for
        // a spanner set.
        let (eps_row, target_pairs): (f64, Vec<(usize, usize)>) = match opts.constraints {
            ConstraintSet::Full => {
                let mut pairs = Vec::with_capacity(n * (n - 1));
                for x in 0..n {
                    for xp in 0..n {
                        if x != xp {
                            pairs.push((x, xp));
                        }
                    }
                }
                (eps, pairs)
            }
            ConstraintSet::Spanner { dilation } => {
                if dilation < 1.0 {
                    return Err(MechanismError::BadParameter(format!(
                        "spanner dilation must be >= 1, got {dilation}"
                    )));
                }
                let spanner = reuse_or_build(opts.shared_spanner.as_ref(), locations, dilation);
                let mut pairs = Vec::with_capacity(2 * spanner.edges().len());
                for &(i, j) in spanner.edges() {
                    pairs.push((i, j));
                    pairs.push((j, i));
                }
                (eps / dilation, pairs)
            }
        };
        let rows_total = n + n * target_pairs.len();

        // Seed pairs materialized before the first solve. With cut
        // generation off, that is the whole target set (the historical
        // behavior); with it on, a sparse subset likely to contain the
        // active set: the δ-spanner edges for a full target (near pairs
        // bind at the optimum), the shortest edges for a spanner target.
        let cutgen = opts.cutgen;
        let seed_pairs: Vec<(usize, usize)> = if !cutgen.enabled {
            target_pairs.clone()
        } else {
            match opts.constraints {
                ConstraintSet::Full => {
                    if cutgen.seed_dilation < 1.0 {
                        return Err(MechanismError::BadParameter(format!(
                            "cut-gen seed dilation must be >= 1, got {}",
                            cutgen.seed_dilation
                        )));
                    }
                    let spanner = reuse_or_build(
                        opts.shared_spanner.as_ref(),
                        locations,
                        cutgen.seed_dilation,
                    );
                    let mut pairs = Vec::with_capacity(2 * spanner.edges().len());
                    for &(i, j) in spanner.edges() {
                        pairs.push((i, j));
                        pairs.push((j, i));
                    }
                    pairs
                }
                // The greedy spanner adds edges ascending by length, so a
                // prefix of the target list is its shortest (most binding)
                // edges.
                ConstraintSet::Spanner { .. } => {
                    let take = (8 * n).min(target_pairs.len());
                    target_pairs[..take].to_vec()
                }
            }
        };

        let mut model = Model::new(Sense::Minimize);
        // Variables k[x*n + z] with objective Π(x)·d_Q(x,z).
        for x in 0..n {
            let px = prior[x] / psum;
            for z in 0..n {
                model.add_var(px * metric.loss(locations[x], locations[z]));
            }
        }
        // Row-stochasticity: Σ_z k(x,z) = 1.
        for x in 0..n {
            let entries: Vec<(usize, f64)> = (0..n).map(|z| (x * n + z, 1.0)).collect();
            model.add_row(&entries, Op::Eq, 1.0);
        }
        // GeoInd constraints. Rows are scaled by e^{−ε·d} so every
        // coefficient stays in [−1, 1] (the rhs is 0, so scaling is free).
        let add_pair = |m: &mut Model, x: usize, xp: usize| {
            let scale = (-eps_row * locations[x].dist(locations[xp])).exp();
            for z in 0..n {
                m.add_row(&[(x * n + z, scale), (xp * n + z, -1.0)], Op::Le, 0.0);
            }
        };
        let mut included = vec![false; n * n];
        let mut active_pairs = 0usize;
        for &(x, xp) in &seed_pairs {
            if !included[x * n + xp] {
                included[x * n + xp] = true;
                active_pairs += 1;
                add_pair(&mut model, x, xp);
            }
        }

        let stats_cols = model.num_vars();
        let solver_slack = opts.simplex.opt_tol;
        // Cut warm restarts are only sound on the dual path, where the
        // exit basis can be remapped past the appended dual columns. Other
        // paths re-solve cold each round (still exact, just slower).
        let warm_capable = opts.via == SolveVia::Dual;
        let mut simplex = opts.simplex.clone();
        let mut total_iterations = 0usize;
        let mut rounds = 0usize;
        let mut seed_basis: Option<Basis> = None;
        let sol = loop {
            if rounds >= cutgen.max_rounds.max(1) {
                return Err(MechanismError::Lp(LpError::IterationLimit));
            }
            rounds += 1;
            let sol = model.solve_with(opts.via, simplex.clone())?;
            total_iterations += sol.iterations;
            if seed_basis.is_none() {
                // The seed-round exit basis lives in the seed LP's column
                // space, which sibling solves share; later rounds' bases
                // live in this solve's private cut-extended space.
                seed_basis = Some(sol.basis.clone());
            }
            if !cutgen.enabled {
                break sol;
            }
            // Separation oracle: scan the candidate optimum for violated
            // target pairs with certify's per-pair check, in canonical
            // target order.
            let cand = Channel::new(locations.to_vec(), locations.to_vec(), sol.values.clone());
            let fresh: Vec<(usize, usize)> = target_pairs
                .iter()
                .copied()
                .filter(|&(x, xp)| {
                    !included[x * n + xp]
                        && crate::certify::pair_violation(&cand, eps_row, x, xp)
                            > cutgen.separation_tol
                })
                .collect();
            if fresh.is_empty() {
                break sol; // fixed point: every target pair satisfied
            }
            // Warm restart: the appended primal rows become new dual
            // columns, so the exit basis stays primal-feasible once its
            // column references are shifted past the insertion block —
            // resume primal phase 2 instead of re-solving from scratch.
            // (Computed against the model *before* the rows go in.)
            if warm_capable {
                simplex.start_basis = Some(remap_dual_basis_after_le_append(
                    &model,
                    &sol.basis,
                    n * fresh.len(),
                ));
                simplex.warm_mode = WarmMode::PrimalContinue;
            } else {
                simplex.start_basis = None;
            }
            for (x, xp) in fresh {
                included[x * n + xp] = true;
                active_pairs += 1;
                add_pair(&mut model, x, xp);
            }
        };
        let rows_active = n + n * active_pairs;

        // Mandatory admission gate: certify the raw simplex optimum against
        // the solve-time constraint set, lift it back onto the exact GeoInd
        // surface (the LP enforces row-scaled constraints, so the solver
        // tolerance must be un-scaled into an honest guarantee — see
        // Channel::geoind_repair), and re-certify strictly. A channel that
        // still violates is quarantined, never sampled. The cut-generation
        // fixed point satisfies the *entire* target set, so the spec is
        // identical whether or not rows were delayed.
        let spec = crate::certify::CertifySpec {
            eps,
            constraints: opts.constraints,
            solver_slack,
        };
        let channel = crate::certify::admit(
            Channel::new(locations.to_vec(), locations.to_vec(), sol.values),
            &spec,
            "opt.solve",
        )?;
        let snapper = KdTree::build(locations.iter().copied().enumerate().map(|(i, p)| (p, i)));
        Ok(Self {
            eps,
            metric,
            channel,
            snapper,
            stats: SolveStats {
                rows: rows_total,
                cols: stats_cols,
                iterations: total_iterations,
                cut_rounds: if cutgen.enabled { rounds } else { 0 },
                rows_active,
                rows_total,
                primal_residual: sol.residual,
                dual_residual: sol.dual_residual,
            },
            basis: seed_basis.unwrap_or_default(),
        })
    }

    /// The optimal channel.
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// The privacy budget.
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// The quality metric the channel was optimized for.
    pub fn metric(&self) -> QualityMetric {
        self.metric
    }

    /// LP size/effort statistics.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// The optimal basis the solve exited with, in the standard-form
    /// column space of the formulation that actually ran (the dual, for
    /// the default [`SolveVia::Dual`] path). Feed it to a later solve via
    /// [`SimplexOptions::start_basis`] to warm-start a structurally
    /// identical LP — e.g. the sibling node of a hierarchical index, whose
    /// constraint matrix is the same and only the prior-dependent
    /// right-hand side differs.
    pub fn basis(&self) -> &Basis {
        &self.basis
    }

    /// Expected loss under a prior (defaults to the training objective when
    /// called with the same prior used at solve time).
    pub fn expected_loss(&self, prior: &[f64]) -> f64 {
        self.channel.expected_loss(prior, self.metric)
    }

    /// Index of the logical location nearest to a continuous point.
    pub fn snap_index(&self, x: Point) -> usize {
        self.snapper.nearest(x).expect("non-empty location set").1
    }
}

impl Mechanism for OptimalMechanism {
    fn report<R: Rng + ?Sized>(&self, x: Point, rng: &mut R) -> Point {
        let idx = self.snap_index(x);
        self.channel.sample_location(idx, rng)
    }

    fn name(&self) -> String {
        format!("OPT(eps={}, n={})", self.eps, self.channel.num_inputs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoind_rng::SeededRng;
    use geoind_spatial::geom::BBox;

    fn line_points(n: usize, spacing: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect()
    }

    #[test]
    fn two_point_closed_form() {
        // Uniform prior, unit distance: optimum flips with prob 1/(1+e^eps).
        let eps = 1.0;
        let opt = OptimalMechanism::solve(
            eps,
            &line_points(2, 1.0),
            &[0.5, 0.5],
            QualityMetric::Euclidean,
        )
        .unwrap();
        let flip = 1.0 / (1.0 + eps.exp());
        assert!((opt.channel().prob(0, 1) - flip).abs() < 1e-8);
        assert!((opt.channel().prob(1, 0) - flip).abs() < 1e-8);
        assert!((opt.expected_loss(&[0.5, 0.5]) - flip).abs() < 1e-8);
    }

    #[test]
    fn channel_satisfies_geoind() {
        let grid = Grid::new(BBox::square(20.0), 3);
        let prior = GridPrior::uniform(BBox::square(20.0), 3);
        let opt = OptimalMechanism::on_grid(0.5, &grid, &prior, QualityMetric::Euclidean).unwrap();
        assert!(
            opt.channel().satisfies_geoind(0.5, 1e-6),
            "violation {}",
            opt.channel().geoind_violation(0.5)
        );
    }

    #[test]
    fn geoind_holds_for_any_prior_it_was_not_tuned_for() {
        // The remarkable OPT property (Section 2.3): tuned for one prior,
        // private for all. GeoInd is a property of the channel alone, so a
        // skewed-prior channel passes the same constraint check.
        let pts = line_points(4, 2.0);
        let skewed = [0.7, 0.1, 0.1, 0.1];
        let opt = OptimalMechanism::solve(0.4, &pts, &skewed, QualityMetric::Euclidean).unwrap();
        assert!(opt.channel().satisfies_geoind(0.4, 1e-6));
    }

    #[test]
    fn beats_or_matches_planar_laplace_utility() {
        // OPT is *optimal*: no GeoInd channel over the same locations can
        // do better; in particular a discretized PL cannot.
        let domain = BBox::square(20.0);
        let grid = Grid::new(domain, 4);
        let mut weights = vec![0.0; 16];
        weights[5] = 10.0;
        weights[6] = 5.0;
        weights[9] = 3.0;
        weights[0] = 1.0;
        let prior = GridPrior::from_weights(grid.clone(), weights);
        let eps = 0.3;
        let opt = OptimalMechanism::on_grid(eps, &grid, &prior, QualityMetric::Euclidean).unwrap();
        let opt_loss = opt.expected_loss(prior.probs());

        // Monte-Carlo the PL+remap loss under the same prior.
        let pl = crate::planar_laplace::PlanarLaplace::new(eps).with_grid_remap(grid.clone());
        let mut rng = SeededRng::from_seed(5);
        let mut pl_loss = 0.0;
        let trials = 3_000;
        for (cell, &p) in prior.probs().iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let x = grid.center_of(cell);
            let mut acc = 0.0;
            for _ in 0..trials {
                acc += pl.report(x, &mut rng).dist(x);
            }
            pl_loss += p * acc / trials as f64;
        }
        assert!(
            opt_loss <= pl_loss * 1.02,
            "OPT loss {opt_loss} should not exceed PL loss {pl_loss}"
        );
    }

    #[test]
    fn skewed_prior_beats_uniform_prior_utility() {
        // Tuning to a concentrated prior must give (weakly) better expected
        // loss under that prior than the channel tuned for uniform.
        let pts = Grid::new(BBox::square(10.0), 3).centers();
        let mut skewed = vec![0.01; 9];
        skewed[4] = 0.92;
        let tuned = OptimalMechanism::solve(0.3, &pts, &skewed, QualityMetric::Euclidean).unwrap();
        let generic =
            OptimalMechanism::solve(0.3, &pts, &[1.0 / 9.0; 9], QualityMetric::Euclidean).unwrap();
        let lt = tuned
            .channel()
            .expected_loss(&skewed, QualityMetric::Euclidean);
        let lg = generic
            .channel()
            .expected_loss(&skewed, QualityMetric::Euclidean);
        assert!(lt <= lg + 1e-8, "tuned {lt} vs generic {lg}");
    }

    #[test]
    fn spanner_variant_is_private_and_close() {
        let grid = Grid::new(BBox::square(20.0), 3);
        let prior = GridPrior::uniform(BBox::square(20.0), 3);
        let eps = 0.5;
        let exact =
            OptimalMechanism::on_grid(eps, &grid, &prior, QualityMetric::Euclidean).unwrap();
        let solve_spanner = |dilation: f64| {
            OptimalMechanism::solve_with(
                eps,
                &grid.centers(),
                prior.probs(),
                QualityMetric::Euclidean,
                OptOptions {
                    constraints: ConstraintSet::Spanner { dilation },
                    ..OptOptions::default()
                },
            )
            .unwrap()
        };
        let tight = solve_spanner(1.05);
        let loose = solve_spanner(1.5);
        // Still ε-GeoInd (the whole point of the spanner argument)...
        assert!(tight.channel().satisfies_geoind(eps, 1e-6));
        assert!(loose.channel().satisfies_geoind(eps, 1e-6));
        // ...with fewer constraints...
        assert!(loose.stats().rows < exact.stats().rows);
        // ...at a utility premium that shrinks as δ → 1 (the ε/δ budget
        // tightening is the price of the smaller program).
        let le = exact.expected_loss(prior.probs());
        let lt = tight.expected_loss(prior.probs());
        let ll = loose.expected_loss(prior.probs());
        assert!(
            lt >= le - 1e-8 && ll >= le - 1e-8,
            "spanner cannot beat the true optimum"
        );
        assert!(
            lt <= ll + 1e-8,
            "tighter dilation should not lose more ({lt} vs {ll})"
        );
        assert!(
            lt <= le * 1.35,
            "near-exact spanner loss {lt} too far above exact {le}"
        );
    }

    #[test]
    fn higher_eps_means_lower_loss() {
        let grid = Grid::new(BBox::square(20.0), 3);
        let prior = GridPrior::uniform(BBox::square(20.0), 3);
        let mut prev = f64::INFINITY;
        for eps in [0.1, 0.3, 0.6, 1.0] {
            let opt =
                OptimalMechanism::on_grid(eps, &grid, &prior, QualityMetric::Euclidean).unwrap();
            let loss = opt.expected_loss(prior.probs());
            assert!(loss <= prev + 1e-9, "loss not decreasing at eps={eps}");
            prev = loss;
        }
    }

    #[test]
    fn report_snaps_and_samples() {
        let grid = Grid::new(BBox::square(10.0), 2);
        let prior = GridPrior::uniform(BBox::square(10.0), 2);
        let opt = OptimalMechanism::on_grid(1.0, &grid, &prior, QualityMetric::Euclidean).unwrap();
        let mut rng = SeededRng::from_seed(9);
        let centers = grid.centers();
        for _ in 0..100 {
            let z = opt.report(Point::new(1.1, 2.3), &mut rng);
            assert!(centers.iter().any(|c| c.dist(z) < 1e-12));
        }
    }

    fn solve_cutgen(
        eps: f64,
        pts: &[Point],
        prior: &[f64],
        constraints: ConstraintSet,
        enabled: bool,
    ) -> OptimalMechanism {
        OptimalMechanism::solve_with(
            eps,
            pts,
            prior,
            QualityMetric::Euclidean,
            OptOptions {
                constraints,
                cutgen: CutGenOptions {
                    enabled,
                    ..CutGenOptions::default()
                },
                ..OptOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn cutgen_fixed_point_certifies_full_set_with_zero_violated_rows() {
        // The cut-generation invariant: the fixed point is exact, so every
        // one of the n²(n−1) scalar GeoInd constraints of the *full* target
        // program holds at full admission tolerance — the separation oracle
        // must find zero violated rows in the admitted channel.
        for (g, eps) in [(2u32, 1.0), (3, 0.5), (3, 0.2), (4, 0.7)] {
            let grid = Grid::new(BBox::square(12.0), g);
            let pts = grid.centers();
            let n = pts.len();
            let mut prior = vec![1.0; n];
            for (i, w) in prior.iter_mut().enumerate() {
                *w += ((i * 37) % 11) as f64 / 3.0; // deterministic skew
            }
            let s: f64 = prior.iter().sum();
            for w in &mut prior {
                *w /= s;
            }
            let opt = solve_cutgen(eps, &pts, &prior, ConstraintSet::Full, true);
            assert!(opt.stats().cut_rounds >= 1);
            assert!(opt.stats().rows_active <= opt.stats().rows_total);
            let tol = crate::certify::strict_tolerance(n, n);
            let mut violated = 0usize;
            for x in 0..n {
                for xp in 0..n {
                    if x != xp && crate::certify::pair_violation(opt.channel(), eps, x, xp) > tol {
                        violated += 1;
                    }
                }
            }
            assert_eq!(violated, 0, "g={g} eps={eps}: violated pairs remain");
        }
    }

    #[test]
    fn cutgen_is_bit_identical_to_full_materialization() {
        // Cut generation is an exact method. The refactorize-at-exit rule
        // plus double-double dual refinement make the emitted channel a
        // pure function of the optimum the solve converged to, so on
        // instances whose optimal basis is unique the delayed-row solve
        // reproduces the eager solve bit for bit — including g=3 here,
        // where the lazy path genuinely skips ~20% of the GeoInd rows.
        for (g, eps) in [(2u32, 0.4), (2, 0.9), (2, 1.3), (3, 1.1)] {
            let grid = Grid::new(BBox::square(10.0), g);
            let pts = grid.centers();
            let n = pts.len();
            let mut prior = vec![0.0; n];
            for (i, w) in prior.iter_mut().enumerate() {
                *w = 1.0 + ((i * 29) % 13) as f64 / 4.0; // unique optimum
            }
            let s: f64 = prior.iter().sum();
            for w in &mut prior {
                *w /= s;
            }
            let eager = solve_cutgen(eps, &pts, &prior, ConstraintSet::Full, false);
            let lazy = solve_cutgen(eps, &pts, &prior, ConstraintSet::Full, true);
            assert_eq!(eager.stats().cut_rounds, 0);
            assert!(lazy.stats().cut_rounds >= 1);
            assert_eq!(eager.stats().rows_total, lazy.stats().rows_total);
            for x in 0..n {
                for z in 0..n {
                    assert_eq!(
                        eager.channel().prob(x, z).to_bits(),
                        lazy.channel().prob(x, z).to_bits(),
                        "g={g} eps={eps}: probs differ at ({x},{z})"
                    );
                }
            }
        }
        // Near-degenerate instances break exact ties only through float
        // rounding of the LP coefficients, so two different optimal bases
        // carry exact duals ~1 ulp apart and bitwise equality is not
        // attainable from different pivot paths; the channels still agree
        // to machine precision.
        let grid = Grid::new(BBox::square(10.0), 3);
        let pts = grid.centers();
        let n = pts.len();
        let mut prior = vec![0.0; n];
        for (i, w) in prior.iter_mut().enumerate() {
            *w = 1.0 + ((i * 29) % 13) as f64 / 4.0;
        }
        let s: f64 = prior.iter().sum();
        for w in &mut prior {
            *w /= s;
        }
        let eager = solve_cutgen(0.4, &pts, &prior, ConstraintSet::Full, false);
        let lazy = solve_cutgen(0.4, &pts, &prior, ConstraintSet::Full, true);
        for x in 0..n {
            for z in 0..n {
                let d = (eager.channel().prob(x, z) - lazy.channel().prob(x, z)).abs();
                assert!(
                    d <= 4e-16,
                    "probs differ beyond ulp noise at ({x},{z}): {d:e}"
                );
            }
        }
    }

    #[test]
    fn cutgen_composes_with_spanner_target() {
        // Spanner target + delayed rows: the fixed point satisfies every
        // spanner edge at ε/δ, hence full ε-GeoInd by path chaining.
        let grid = Grid::new(BBox::square(20.0), 3);
        let prior = GridPrior::uniform(BBox::square(20.0), 3);
        let eps = 0.5;
        let lazy = solve_cutgen(
            eps,
            &grid.centers(),
            prior.probs(),
            ConstraintSet::Spanner { dilation: 1.2 },
            true,
        );
        let eager = solve_cutgen(
            eps,
            &grid.centers(),
            prior.probs(),
            ConstraintSet::Spanner { dilation: 1.2 },
            false,
        );
        assert!(lazy.channel().satisfies_geoind(eps, 1e-6));
        assert!(lazy.stats().rows_active <= lazy.stats().rows_total);
        assert!(
            (lazy.expected_loss(prior.probs()) - eager.expected_loss(prior.probs())).abs() <= 1e-9
        );
    }

    #[test]
    fn shared_spanner_matches_fresh_build() {
        // A level-shared spanner must leave the solve unchanged when it
        // matches the node geometry (and be ignored when it does not).
        let grid = Grid::new(BBox::square(20.0), 3);
        let prior = GridPrior::uniform(BBox::square(20.0), 3);
        let eps = 0.5;
        let pts = grid.centers();
        let shared = Arc::new(Spanner::greedy(&pts, 1.2));
        let with_shared = OptimalMechanism::solve_with(
            eps,
            &pts,
            prior.probs(),
            QualityMetric::Euclidean,
            OptOptions {
                constraints: ConstraintSet::Spanner { dilation: 1.2 },
                shared_spanner: Some(Arc::clone(&shared)),
                ..OptOptions::default()
            },
        )
        .unwrap();
        let fresh = solve_cutgen(
            eps,
            &pts,
            prior.probs(),
            ConstraintSet::Spanner { dilation: 1.2 },
            true,
        );
        for x in 0..pts.len() {
            for z in 0..pts.len() {
                assert_eq!(
                    with_shared.channel().prob(x, z).to_bits(),
                    fresh.channel().prob(x, z).to_bits()
                );
            }
        }
        // Mismatched dilation: falls back to a fresh build, still private.
        let mismatched = OptimalMechanism::solve_with(
            eps,
            &pts,
            prior.probs(),
            QualityMetric::Euclidean,
            OptOptions {
                constraints: ConstraintSet::Spanner { dilation: 1.5 },
                shared_spanner: Some(shared),
                ..OptOptions::default()
            },
        )
        .unwrap();
        assert!(mismatched.channel().satisfies_geoind(eps, 1e-6));
    }

    #[test]
    fn bad_parameters_rejected() {
        let pts = line_points(3, 1.0);
        assert!(matches!(
            OptimalMechanism::solve(0.0, &pts, &[0.3, 0.3, 0.4], QualityMetric::Euclidean),
            Err(MechanismError::BadParameter(_))
        ));
        assert!(matches!(
            OptimalMechanism::solve(0.5, &pts, &[0.5, 0.5], QualityMetric::Euclidean),
            Err(MechanismError::BadParameter(_))
        ));
        assert!(matches!(
            OptimalMechanism::solve(0.5, &pts[..1], &[1.0], QualityMetric::Euclidean),
            Err(MechanismError::BadParameter(_))
        ));
    }
}
