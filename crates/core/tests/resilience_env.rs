//! Environment-driven global failpoint arming, as used by the CI fault
//! sweep (`GEOIND_FAILPOINTS=<site>=<spec> …`).
//!
//! This binary is the sweep's target: whichever site the environment
//! arms, the ladder must stay total — construction either succeeds or
//! returns a typed error, every report lands in the domain, and the tier
//! counters account for every report. Global arming is process-wide, so
//! this lives in its own binary with a single test; the thread-scoped
//! per-site properties are in `resilience.rs`.

use geoind_core::alloc::AllocationStrategy;
use geoind_core::msm::MsmMechanism;
use geoind_core::{MechanismError, ResilientMechanism, Tier};
use geoind_data::prior::GridPrior;
use geoind_rng::SeededRng;
use geoind_spatial::geom::{BBox, Point};
use geoind_testkit::failpoint;

fn try_resilient() -> Result<ResilientMechanism, MechanismError> {
    let domain = BBox::square(8.0);
    let prior = GridPrior::uniform(domain, 8);
    ResilientMechanism::from_builder(
        MsmMechanism::builder(domain, prior)
            .epsilon(0.8)
            .granularity(2)
            .strategy(AllocationStrategy::FixedHeight(2)),
    )
}

#[test]
fn env_armed_faults_never_break_totality() {
    // Fold in whatever the sweep armed; when run without the variable,
    // arm a count-based fault ourselves so the degraded path still runs.
    let from_env = failpoint::arm_from_env().expect("GEOIND_FAILPOINTS must parse");
    if from_env == 0 {
        failpoint::arm_global("lp.refactor.singular", failpoint::FailSpec::times(2));
    }

    match try_resilient() {
        // A build-time site (alloc.budget.infeasible) is armed: the only
        // acceptable outcome is a typed error, never a panic.
        Err(e) => assert!(
            matches!(e, MechanismError::AllocationFailed(_)),
            "unexpected construction failure: {e:?}"
        ),
        Ok(r) => {
            let mut rng = SeededRng::from_seed(61);
            let x = Point::new(4.2, 4.2);
            let domain = r.msm().leaf_grid().domain();
            let n = 10u64;
            for _ in 0..n {
                let (z, _) = r.report_with_tier(x, &mut rng);
                assert!(domain.contains_closed(z), "report left the domain");
            }
            let report = r.degradation_report();
            assert_eq!(report.total(), n, "a report went unaccounted: {report}");
            if from_env == 0 {
                // Our own times(2) spec: exactly two reports degrade.
                assert_eq!(
                    report.served_by_tier[Tier::PerLevelLaplace.index()],
                    2,
                    "count-based spec mis-fired: {report}"
                );
            }
        }
    }

    // Parallel precompute under the same fault, at the worker count the
    // sweep requests (GEOIND_JOBS, default 1). The fan-out must stay as
    // total as the serving path: construction and precompute either
    // succeed or return a typed error — never a panic, never a poisoned
    // cache. Re-arm so the earlier section's consumed counts don't make
    // this a no-op for count-based specs.
    let jobs = std::env::var("GEOIND_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1);
    let re_armed = failpoint::arm_from_env().expect("GEOIND_FAILPOINTS must parse");
    if re_armed == 0 {
        failpoint::arm_global("lp.refactor.singular", failpoint::FailSpec::times(1));
    }
    match try_resilient() {
        Err(e) => assert!(
            matches!(e, MechanismError::AllocationFailed(_)),
            "unexpected construction failure: {e:?}"
        ),
        Ok(r) => match r.msm().precompute_jobs(16, jobs) {
            Ok(n) => assert_eq!(
                n,
                r.msm().cached_channels(),
                "precompute must cache every node it reports"
            ),
            // Any typed error is acceptable under an armed fault; the
            // successes that landed before it must still be cached (the
            // cache never holds a failed solve).
            Err(_) => assert!(r.msm().cached_channels() <= 16),
        },
    }

    // Flattening under the same armed fault: either a fused tree installs
    // (and serving stays total through it) or a typed error is returned
    // and serving stays total through the unfused path — never a panic,
    // never a partially installed tree.
    let re_armed = failpoint::arm_from_env().expect("GEOIND_FAILPOINTS must parse");
    if re_armed == 0 {
        failpoint::arm_global("sample.alias.build", failpoint::FailSpec::times(1));
    }
    match try_resilient() {
        Err(e) => assert!(
            matches!(e, MechanismError::AllocationFailed(_)),
            "unexpected construction failure: {e:?}"
        ),
        Ok(r) => {
            let flattened = match r.flatten() {
                Ok(nodes) => {
                    assert!(nodes >= 1, "flatten reported an empty tree");
                    true
                }
                // Any typed error is acceptable; no tree may be left.
                Err(_) => {
                    assert!(!r.msm().is_flattened(), "failed flatten left a tree");
                    false
                }
            };
            let mut rng = SeededRng::from_seed(63);
            let domain = r.msm().leaf_grid().domain();
            for _ in 0..5 {
                let (z, _) = r.report_with_tier(Point::new(4.2, 4.2), &mut rng);
                assert!(domain.contains_closed(z), "report left the domain");
            }
            let report = r.degradation_report();
            assert_eq!(report.total(), 5, "a report went unaccounted: {report}");
            if !flattened {
                assert_eq!(report.sampled_flat, 0, "unfused serving counted as fused");
            }
        }
    }

    // Disarming restores exclusive tier-0 service.
    failpoint::reset_global();
    let healthy = try_resilient().expect("construction must succeed once disarmed");
    let mut rng = SeededRng::from_seed(62);
    for _ in 0..5 {
        let (_, tier) = healthy.report_with_tier(Point::new(4.2, 4.2), &mut rng);
        assert_eq!(tier, Tier::Optimal);
    }
    assert_eq!(healthy.served_by_tier(), [5, 0, 0]);
}
