//! Property tests for the mechanism layer (on the deterministic
//! `geoind-testkit` harness; failures print a per-case seed).

use geoind_core::alloc::{AllocationStrategy, BudgetAllocator};
use geoind_core::certify::{self, CertifySpec, Verdict};
use geoind_core::channel::Channel;
use geoind_core::flat::FlatChannel;
use geoind_core::metrics::QualityMetric;
use geoind_core::opt::{ConstraintSet, OptimalMechanism};
use geoind_rng::{Rng, SeededRng};
use geoind_spatial::geom::Point;
use geoind_testkit::gens::{f64_range, u32_range, Gen};
use geoind_testkit::{check, ensure, ensure_eq, Config};

/// Random row-stochastic channel over `n` collinear points.
struct RandomChannel(usize);

impl Gen for RandomChannel {
    type Value = Channel;
    fn generate(&self, rng: &mut SeededRng) -> Channel {
        let n = self.0;
        let pts: Vec<Point> = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
        let mut probs = Vec::with_capacity(n * n);
        for _ in 0..n {
            let row: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..1.0)).collect();
            let s: f64 = row.iter().sum();
            probs.extend(row.into_iter().map(|v| v / s));
        }
        Channel::new(pts.clone(), pts, probs)
    }
}

/// Budget allocation conserves the total and keeps all levels alive,
/// for every strategy and random parameters.
#[test]
fn allocation_conserves_budget() {
    check(
        "allocation_conserves_budget",
        Config::cases(64),
        &(
            f64_range(0.05, 3.0),
            u32_range(2, 7),
            f64_range(0.3, 0.95),
            u32_range(1, 4),
        ),
        |&(eps, g, rho, h)| {
            let alloc = BudgetAllocator::new(20.0, g, rho);
            for strategy in [
                AllocationStrategy::Auto { max_height: 5 },
                AllocationStrategy::FixedHeight(h),
                AllocationStrategy::Uniform(h),
            ] {
                let Ok(lb) = alloc.allocate(eps, strategy) else {
                    return Err(format!("{strategy:?} rejected valid parameters"));
                };
                ensure!(
                    (lb.total() - eps).abs() < 1e-9,
                    "{strategy:?} leaked budget"
                );
                ensure!(
                    lb.budgets().iter().all(|&b| b > 0.0),
                    "{strategy:?} starved a level"
                );
                if let AllocationStrategy::FixedHeight(hh) | AllocationStrategy::Uniform(hh) =
                    strategy
                {
                    ensure_eq!(lb.height(), hh);
                }
            }
            Ok(())
        },
    );
}

/// geoind_repair output always satisfies the constraints it repairs,
/// and is (numerically) idempotent.
#[test]
fn repair_establishes_geoind_and_is_idempotent() {
    check(
        "repair_establishes_geoind_and_is_idempotent",
        Config::cases(64),
        &(RandomChannel(4), f64_range(0.2, 2.0)),
        |(channel, eps)| {
            let eps = *eps;
            let fixed = channel.geoind_repair(eps);
            ensure!(
                fixed.geoind_violation(eps) <= 1e-9,
                "violation {}",
                fixed.geoind_violation(eps)
            );
            let twice = fixed.geoind_repair(eps);
            for x in 0..fixed.num_inputs() {
                for z in 0..fixed.num_outputs() {
                    ensure!((fixed.prob(x, z) - twice.prob(x, z)).abs() < 1e-9);
                }
            }
            // Rows stay stochastic.
            for x in 0..fixed.num_inputs() {
                ensure!((fixed.row(x).iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
            Ok(())
        },
    );
}

/// The admission gate's contract, on arbitrary random channels:
/// admission always yields a passing certificate (post-repair violation 0
/// within the strict tolerance), the reported per-row L1 delta bounds the
/// pointwise change the repair made, and re-admitting an already-admitted
/// channel is a fixed point with verdict `Certified`.
#[test]
fn admission_gate_repairs_within_reported_loss_bound() {
    check(
        "admission_gate_repairs_within_reported_loss_bound",
        Config::cases(64),
        &(RandomChannel(4), f64_range(0.2, 2.0)),
        |(channel, eps)| {
            let eps = *eps;
            let spec = CertifySpec {
                eps,
                constraints: ConstraintSet::Full,
                solver_slack: 1e-9,
            };
            let admitted =
                certify::admit(channel.clone(), &spec, "prop.admit").map_err(|e| e.to_string())?;
            let cert = admitted
                .certificate()
                .expect("admitted channel lost its certificate");
            ensure!(cert.passes(), "certificate does not pass: {cert:?}");
            let (violation, pairs, row_err) = certify::measure(&admitted, eps);
            ensure!(
                violation <= certify::strict_tolerance(4, 4),
                "post-repair violation {violation}"
            );
            ensure_eq!(pairs, 4 * 3);
            ensure!(row_err <= certify::row_tolerance(4), "row error {row_err}");
            // The certificate's loss report bounds what the repair changed.
            for x in 0..4 {
                let mut row_delta = 0.0;
                for z in 0..4 {
                    row_delta += (admitted.prob(x, z) - channel.prob(x, z)).abs();
                }
                ensure!(
                    row_delta <= cert.repair_l1_delta + 1e-12,
                    "row {x} moved {row_delta} > reported bound {}",
                    cert.repair_l1_delta
                );
            }
            // Idempotence: an admitted channel re-admits as a fixed point.
            let again =
                certify::admit(admitted.clone(), &spec, "prop.admit").map_err(|e| e.to_string())?;
            for x in 0..4 {
                for z in 0..4 {
                    ensure!((again.prob(x, z) - admitted.prob(x, z)).abs() < 1e-9);
                }
            }
            let cert2 = again
                .certificate()
                .expect("re-admitted channel lost its certificate");
            ensure_eq!(cert2.verdict, Verdict::Certified);
            ensure!(cert2.repair_l1_delta < 1e-9, "second repair moved mass");
            Ok(())
        },
    );
}

/// Channel composition is associative and row-stochastic.
#[test]
fn composition_is_associative() {
    check(
        "composition_is_associative",
        Config::cases(64),
        &(RandomChannel(3), RandomChannel(3), RandomChannel(3)),
        |(a, b, c)| {
            let left = a.then(b).then(c);
            let right = a.then(&b.then(c));
            for x in 0..3 {
                for z in 0..3 {
                    ensure!((left.prob(x, z) - right.prob(x, z)).abs() < 1e-12);
                }
                ensure!((left.row(x).iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
            Ok(())
        },
    );
}

/// Post-processing preserves GeoInd for arbitrary second stages
/// (data-processing inequality, randomized check).
#[test]
fn post_processing_preserves_geoind() {
    check(
        "post_processing_preserves_geoind",
        Config::cases(64),
        &(RandomChannel(3), f64_range(0.3, 1.5)),
        |(post, eps)| {
            let eps = *eps;
            let pts: Vec<Point> = (0..3).map(|i| Point::new(i as f64, 0.0)).collect();
            let opt =
                OptimalMechanism::solve(eps, &pts, &[0.2, 0.5, 0.3], QualityMetric::Euclidean)
                    .unwrap();
            let composed = opt.channel().then(post);
            ensure!(
                composed.geoind_violation(eps) <= 1e-7,
                "DPI violated: {}",
                composed.geoind_violation(eps)
            );
            Ok(())
        },
    );
}

/// OPT two-point closed form holds for arbitrary budgets and spacings:
/// with a uniform prior the optimal flip probability is 1/(1 + e^{εd}).
#[test]
fn opt_two_point_closed_form() {
    check(
        "opt_two_point_closed_form",
        Config::cases(64),
        &(f64_range(0.2, 2.0), f64_range(0.5, 8.0)),
        |&(eps, d)| {
            let pts = vec![Point::new(0.0, 0.0), Point::new(d, 0.0)];
            let opt =
                OptimalMechanism::solve(eps, &pts, &[0.5, 0.5], QualityMetric::Euclidean).unwrap();
            let expect = 1.0 / (1.0 + (eps * d).exp());
            ensure!(
                (opt.channel().prob(0, 1) - expect).abs() < 1e-6,
                "flip {} vs closed form {expect}",
                opt.channel().prob(0, 1)
            );
            ensure!((opt.channel().prob(1, 0) - expect).abs() < 1e-6);
            Ok(())
        },
    );
}

/// Vose alias construction reconstructs every random row: the implied
/// marginal (slot mass + alias complement) matches the input within
/// `m` ulps — pure floating-point bookkeeping, no statistical slack.
#[test]
fn alias_tables_reconstruct_random_rows_within_ulps() {
    check(
        "alias_tables_reconstruct_random_rows_within_ulps",
        Config::cases(64),
        &(RandomChannel(6), RandomChannel(2)),
        |(big, small)| {
            for channel in [big, small] {
                let (n, m) = (channel.num_inputs(), channel.num_outputs());
                let mut probs = Vec::with_capacity(n * m);
                for x in 0..n {
                    probs.extend_from_slice(channel.row(x));
                }
                let flat =
                    FlatChannel::build(&probs, n, m).ok_or("valid stochastic matrix refused")?;
                let tol = m as f64 * f64::EPSILON;
                for r in 0..n {
                    for (z, (&got, &want)) in
                        flat.row_marginal(r).iter().zip(channel.row(r)).enumerate()
                    {
                        ensure!(
                            (got - want).abs() <= tol,
                            "row {r} cat {z}: |{got} - {want}| > {tol}"
                        );
                    }
                }
            }
            Ok(())
        },
    );
}

/// Degenerate rows must build without panicking and still reconstruct:
/// a single point mass, an exactly uniform row, and rows mixing
/// denormal-adjacent mass with near-unit mass.
#[test]
fn alias_tables_handle_degenerate_rows() {
    let m = 4;
    let tiny = 1e-308; // denormal-adjacent; still positive and finite
    let rows: Vec<Vec<f64>> = vec![
        vec![0.0, 0.0, 1.0, 0.0],                 // point mass
        vec![0.25; 4],                            // exactly uniform
        vec![tiny, 1.0 - 3.0 * tiny, tiny, tiny], // denormal-adjacent
        vec![tiny, tiny, tiny, tiny],             // all tiny (renormalizes)
        vec![1.0, f64::MIN_POSITIVE, 0.0, 0.0],   // mixed extremes
    ];
    let probs: Vec<f64> = rows.iter().flatten().copied().collect();
    let flat = FlatChannel::build(&probs, rows.len(), m).expect("degenerate rows must build");
    for (r, row) in rows.iter().enumerate() {
        let total: f64 = row.iter().sum();
        let marginal = flat.row_marginal(r);
        let sum: f64 = marginal.iter().sum();
        assert!(
            (sum - 1.0).abs() <= 16.0 * f64::EPSILON,
            "row {r} sum {sum}"
        );
        for (z, (&got, &want)) in marginal.iter().zip(row).enumerate() {
            // The table samples the *normalized* row.
            assert!(
                (got - want / total).abs() <= 1e-12,
                "row {r} cat {z}: {got} vs {}",
                want / total
            );
        }
    }
    // Point-mass rows must sample their single category, always.
    let mut rng = SeededRng::from_seed(9);
    for _ in 0..2_000 {
        assert_eq!(flat.sample_row(0, &mut rng), 2);
    }
}

/// Alias construction is a pure function of the row bits: concurrent
/// builds of the same matrix (as parallel precompute workers would do)
/// yield bit-identical tables — pinned by comparing marginal bit patterns
/// and seeded draw streams across threads.
#[test]
fn alias_construction_is_deterministic_across_threads() {
    let mut rng = SeededRng::from_seed(0xDE_7E_55);
    let (n, m) = (8, 8);
    let mut probs = Vec::with_capacity(n * m);
    for _ in 0..n {
        let row: Vec<f64> = (0..m).map(|_| rng.gen_range(0.001..1.0)).collect();
        let s: f64 = row.iter().sum();
        probs.extend(row.into_iter().map(|v| v / s));
    }
    let reference = FlatChannel::build(&probs, n, m).expect("valid matrix");
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let probs = probs.clone();
            std::thread::spawn(move || FlatChannel::build(&probs, n, m).expect("valid matrix"))
        })
        .collect();
    for handle in handles {
        let built = handle.join().expect("builder thread panicked");
        for r in 0..n {
            let (a, b) = (reference.row_marginal(r), built.row_marginal(r));
            for z in 0..m {
                assert_eq!(a[z].to_bits(), b[z].to_bits(), "row {r} cat {z}");
            }
        }
        let mut rng_a = SeededRng::from_seed(0x51DE);
        let mut rng_b = SeededRng::from_seed(0x51DE);
        for i in 0..2_000 {
            assert_eq!(
                reference.sample_row(i % n, &mut rng_a),
                built.sample_row(i % n, &mut rng_b)
            );
        }
    }
}
