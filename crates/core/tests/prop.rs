//! Property tests for the mechanism layer.

use geoind_core::alloc::{AllocationStrategy, BudgetAllocator};
use geoind_core::channel::Channel;
use geoind_core::metrics::QualityMetric;
use geoind_core::opt::OptimalMechanism;
use geoind_spatial::geom::Point;
use proptest::prelude::*;

/// Random row-stochastic channel over `n` collinear points.
fn random_channel(n: usize) -> impl Strategy<Value = Channel> {
    prop::collection::vec(prop::collection::vec(0.01..1.0f64, n), n).prop_map(move |rows| {
        let pts: Vec<Point> = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
        let mut probs = Vec::with_capacity(n * n);
        for row in rows {
            let s: f64 = row.iter().sum();
            probs.extend(row.into_iter().map(|v| v / s));
        }
        Channel::new(pts.clone(), pts, probs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Budget allocation conserves the total and keeps all levels alive,
    /// for every strategy and random parameters.
    #[test]
    fn allocation_conserves_budget(
        eps in 0.05..3.0f64,
        g in 2u32..7,
        rho in 0.3..0.95f64,
        h in 1u32..4,
    ) {
        let alloc = BudgetAllocator::new(20.0, g, rho);
        for strategy in [
            AllocationStrategy::Auto { max_height: 5 },
            AllocationStrategy::FixedHeight(h),
            AllocationStrategy::Uniform(h),
        ] {
            let lb = alloc.allocate(eps, strategy);
            prop_assert!((lb.total() - eps).abs() < 1e-9, "{strategy:?} leaked budget");
            prop_assert!(lb.budgets().iter().all(|&b| b > 0.0), "{strategy:?} starved a level");
            if let AllocationStrategy::FixedHeight(hh) | AllocationStrategy::Uniform(hh) = strategy {
                prop_assert_eq!(lb.height(), hh);
            }
        }
    }

    /// geoind_repair output always satisfies the constraints it repairs,
    /// and is (numerically) idempotent.
    #[test]
    fn repair_establishes_geoind_and_is_idempotent(
        channel in random_channel(4),
        eps in 0.2..2.0f64,
    ) {
        let fixed = channel.geoind_repair(eps);
        prop_assert!(fixed.geoind_violation(eps) <= 1e-9,
            "violation {}", fixed.geoind_violation(eps));
        let twice = fixed.geoind_repair(eps);
        for x in 0..fixed.num_inputs() {
            for z in 0..fixed.num_outputs() {
                prop_assert!((fixed.prob(x, z) - twice.prob(x, z)).abs() < 1e-9);
            }
        }
        // Rows stay stochastic.
        for x in 0..fixed.num_inputs() {
            prop_assert!((fixed.row(x).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    /// Channel composition is associative and row-stochastic.
    #[test]
    fn composition_is_associative(
        a in random_channel(3),
        b in random_channel(3),
        c in random_channel(3),
    ) {
        let left = a.then(&b).then(&c);
        let right = a.then(&b.then(&c));
        for x in 0..3 {
            for z in 0..3 {
                prop_assert!((left.prob(x, z) - right.prob(x, z)).abs() < 1e-12);
            }
            prop_assert!((left.row(x).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    /// Post-processing preserves GeoInd for arbitrary second stages
    /// (data-processing inequality, randomized check).
    #[test]
    fn post_processing_preserves_geoind(
        post in random_channel(3),
        eps in 0.3..1.5f64,
    ) {
        let pts: Vec<Point> = (0..3).map(|i| Point::new(i as f64, 0.0)).collect();
        let opt = OptimalMechanism::solve(
            eps,
            &pts,
            &[0.2, 0.5, 0.3],
            QualityMetric::Euclidean,
        ).unwrap();
        let composed = opt.channel().then(&post);
        prop_assert!(composed.geoind_violation(eps) <= 1e-7,
            "DPI violated: {}", composed.geoind_violation(eps));
    }

    /// OPT two-point closed form holds for arbitrary budgets and spacings:
    /// with a uniform prior the optimal flip probability is 1/(1 + e^{εd}).
    #[test]
    fn opt_two_point_closed_form(eps in 0.2..2.0f64, d in 0.5..8.0f64) {
        let pts = vec![Point::new(0.0, 0.0), Point::new(d, 0.0)];
        let opt = OptimalMechanism::solve(eps, &pts, &[0.5, 0.5], QualityMetric::Euclidean)
            .unwrap();
        let expect = 1.0 / (1.0 + (eps * d).exp());
        prop_assert!((opt.channel().prob(0, 1) - expect).abs() < 1e-6,
            "flip {} vs closed form {expect}", opt.channel().prob(0, 1));
        prop_assert!((opt.channel().prob(1, 0) - expect).abs() < 1e-6);
    }
}
