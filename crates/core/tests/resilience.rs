//! Fault-injection property suite for the degradation ladder.
//!
//! For every named failpoint site ([`failpoint::SITES`]) armed one at a
//! time, the ladder must stay **total** (every `report()` returns a point,
//! no panic), the right tier counter must move, the counters must account
//! for 100% of the reports, and the tier that actually serves must pass an
//! empirical GeoInd audit at that tier's budget.
//!
//! All arming here is thread-scoped ([`failpoint::Session`]) so the tests
//! in this binary can run concurrently. Global/environment arming is
//! exercised in `resilience_env.rs` (a separate binary).

use geoind_core::alloc::AllocationStrategy;
use geoind_core::audit::{audit_geoind, AuditConfig};
use geoind_core::msm::MsmMechanism;
use geoind_core::{MechanismError, ResilientMechanism, Tier};
use geoind_data::loader::{load_gowalla, LoadError, AUSTIN};
use geoind_data::prior::GridPrior;
use geoind_rng::SeededRng;
use geoind_spatial::geom::{BBox, Point};
use geoind_spatial::grid::Grid;
use geoind_spatial::hier::HierGrid;
use geoind_testkit::failpoint::{self, FailSpec, Session};

const EPS: f64 = 0.8;

fn resilient() -> ResilientMechanism {
    let domain = BBox::square(8.0);
    let prior = GridPrior::uniform(domain, 8);
    ResilientMechanism::from_builder(
        MsmMechanism::builder(domain, prior)
            .epsilon(EPS)
            .granularity(2)
            .strategy(AllocationStrategy::FixedHeight(2)),
    )
    .unwrap()
}

/// The sites that fault the *report* path of the wrapped MSM (LP solves,
/// the channel-cache lock, and post-repair re-certification) and therefore
/// trigger tier-1 service.
const REPORT_PATH_SITES: &[&str] = &[
    "lp.refactor.singular",
    "lp.iterations.exhausted",
    "cache.lock.poisoned",
    "certify.repair.fail",
];

#[test]
fn every_site_keeps_report_total_and_counters_exact() {
    // One-at-a-time sweep over the full canonical site list: whatever is
    // armed, report() must return an in-domain point without panicking and
    // the counters must account for every report.
    for &site in failpoint::SITES {
        let mut fp = Session::new();
        fp.arm(site, FailSpec::always());
        match site {
            "alloc.budget.infeasible" => {
                // Fires at build time: construction reports a typed error
                // instead of panicking (the ladder needs the budgets, so
                // construction itself is not degradable).
                let domain = BBox::square(8.0);
                let err = ResilientMechanism::from_builder(
                    MsmMechanism::builder(domain, GridPrior::uniform(domain, 8))
                        .epsilon(EPS)
                        .granularity(2)
                        .strategy(AllocationStrategy::FixedHeight(2)),
                )
                .unwrap_err();
                assert!(
                    matches!(err, MechanismError::AllocationFailed(_)),
                    "{site}: expected AllocationFailed, got {err:?}"
                );
                assert!(fp.fired(site) >= 1);
            }
            "cache.import.corrupt" => {
                // Fires on cache import only: the import is rejected with a
                // typed error and tier-0 service is untouched.
                let r = resilient();
                let err = r.msm().import_cache(&mut (&[] as &[u8])).unwrap_err();
                assert!(
                    matches!(err, MechanismError::CacheCorrupt { .. }),
                    "{site}: expected CacheCorrupt, got {err:?}"
                );
                let mut rng = SeededRng::from_seed(11);
                let (z, tier) = r.report_with_tier(Point::new(3.0, 3.0), &mut rng);
                assert!(r.msm().leaf_grid().domain().contains_closed(z));
                assert_eq!(tier, Tier::Optimal, "{site} must not affect reports");
                assert_eq!(r.degradation_report().total(), 1);
            }
            "data.loader.truncated" => {
                // Fires in the dataset loaders: a typed LoadError, never a
                // panic or a silently short dataset.
                let path = std::env::temp_dir()
                    .join(format!("geoind-resilience-{}.txt", std::process::id()));
                std::fs::write(&path, "0\t2010-01-01\t30.23\t-97.79\t1\n").unwrap();
                let err = load_gowalla(&path, AUSTIN).unwrap_err();
                std::fs::remove_file(&path).ok();
                assert!(
                    matches!(err, LoadError::Truncated(_)),
                    "{site}: expected Truncated, got {err:?}"
                );
            }
            "certify.channel.violation" => {
                // A forced raw-certification failure is NOT a serve
                // refusal: the admission gate repairs the channel, the
                // repaired copy re-certifies, and tier 0 serves normally —
                // only the certificate verdict (and the repaired counter)
                // records that the gate had to intervene.
                let r = resilient();
                let centers = r.msm().leaf_grid().centers();
                let mut rng = SeededRng::from_seed(17);
                let n = 12u64;
                for i in 0..n {
                    let x = Point::new((i % 8) as f64, (i % 5) as f64 + 0.4);
                    let (z, tier) = r.report_with_tier(x, &mut rng);
                    assert_eq!(tier, Tier::Optimal, "site {site}");
                    assert!(
                        centers.iter().any(|c| c.dist(z) < 1e-12),
                        "{site}: {z:?} is not a leaf center"
                    );
                }
                let report = r.degradation_report();
                assert_eq!(report.served_by_tier, [n, 0, 0], "site {site}");
                assert_eq!(
                    report.served_repaired, n,
                    "every serve used repaired channels"
                );
                assert_eq!(
                    report.quarantined, 0,
                    "repair succeeded; nothing quarantined"
                );
                assert!(fp.fired(site) >= 1, "site {site} never fired");
            }
            "sample.alias.build" => {
                // Fires in the admission gate's flattening step: the
                // channel is still certified and admitted, it just keeps
                // the inverse-CDF sampling path — tier-0 service is
                // untouched, and an explicit flatten() refuses with a
                // typed error instead of installing a partial tree.
                let r = resilient();
                let centers = r.msm().leaf_grid().centers();
                let mut rng = SeededRng::from_seed(19);
                let n = 6u64;
                for i in 0..n {
                    let x = Point::new((i % 8) as f64, (i % 5) as f64 + 0.4);
                    let (z, tier) = r.report_with_tier(x, &mut rng);
                    assert_eq!(tier, Tier::Optimal, "site {site}");
                    assert!(
                        centers.iter().any(|c| c.dist(z) < 1e-12),
                        "{site}: {z:?} is not a leaf center"
                    );
                }
                let report = r.degradation_report();
                assert_eq!(report.served_by_tier, [n, 0, 0], "site {site}");
                assert_eq!(report.sampled_flat, 0, "no fused tree exists");
                let err = r.flatten().unwrap_err();
                assert!(
                    matches!(err, MechanismError::BadParameter(_)),
                    "{site}: expected BadParameter, got {err:?}"
                );
                assert!(!r.msm().is_flattened());
                assert!(fp.fired(site) >= 1, "site {site} never fired");
            }
            _ if site.starts_with("serve.") => {
                // Serving-layer journal sites (geoind-serve's WAL). They
                // are not wired into the core ladder: arming one must
                // leave tier-0 service completely untouched. Their own
                // crash-replay suite lives in crates/serve.
                let r = resilient();
                let mut rng = SeededRng::from_seed(13);
                let (z, tier) = r.report_with_tier(Point::new(3.0, 3.0), &mut rng);
                assert!(r.msm().leaf_grid().domain().contains_closed(z));
                assert_eq!(tier, Tier::Optimal, "{site} must not affect core reports");
            }
            _ => {
                // Report-path faults: every report degrades to tier 1 and
                // still lands on a leaf center inside the domain.
                assert!(
                    REPORT_PATH_SITES.contains(&site),
                    "unclassified failpoint site {site}; extend this sweep"
                );
                let r = resilient();
                let centers = r.msm().leaf_grid().centers();
                let mut rng = SeededRng::from_seed(7);
                let n = 12u64;
                for i in 0..n {
                    let x = Point::new((i % 8) as f64, (i % 5) as f64 + 0.4);
                    let (z, tier) = r.report_with_tier(x, &mut rng);
                    assert_eq!(tier, Tier::PerLevelLaplace, "site {site}");
                    assert!(
                        centers.iter().any(|c| c.dist(z) < 1e-12),
                        "{site}: {z:?} is not a leaf center"
                    );
                }
                let report = r.degradation_report();
                assert_eq!(report.served_by_tier, [0, n, 0], "site {site}");
                assert_eq!(report.total(), n, "site {site}");
                assert_eq!(report.degraded(), n, "site {site}");
                // Only a failed re-certification is a quarantine; LP and
                // lock faults are infrastructure hiccups.
                let want_quarantined = if site == "certify.repair.fail" { n } else { 0 };
                assert_eq!(report.quarantined, want_quarantined, "site {site}");
                assert_eq!(report.served_repaired, 0, "site {site}");
                assert!(fp.fired(site) >= n, "site {site} under-fired");
                let fault = report.last_fault.expect("degradation recorded no fault");
                assert!(
                    fault.contains("per-level-laplace"),
                    "unhelpful fault: {fault}"
                );
            }
        }
    }
}

#[test]
fn quarantined_channel_forces_descent_and_is_counted() {
    // The fail-closed invariant end to end: when a channel fails even
    // post-repair re-certification (both certify failpoints armed), no
    // request is ever served from it — every report descends to the
    // GeoInd-safe tier-1 floor, the quarantine counter accounts for each,
    // and the fault chain names the quarantine.
    let mut fp = Session::new();
    fp.arm("certify.channel.violation", FailSpec::always());
    fp.arm("certify.repair.fail", FailSpec::always());
    let r = resilient();
    let centers = r.msm().leaf_grid().centers();
    let mut rng = SeededRng::from_seed(23);
    let n = 12u64;
    for i in 0..n {
        let x = Point::new((i % 8) as f64, (i % 5) as f64 + 0.4);
        let (z, tier) = r.report_with_tier(x, &mut rng);
        assert_eq!(tier, Tier::PerLevelLaplace);
        assert!(centers.iter().any(|c| c.dist(z) < 1e-12));
    }
    let report = r.degradation_report();
    assert_eq!(report.served_by_tier, [0, n, 0]);
    assert_eq!(report.quarantined, n, "each refusal must be counted");
    assert_eq!(report.served_repaired, 0, "nothing was served from tier 0");
    assert_eq!(
        report.log_line(),
        format!("degradation optimal=0 per-level={n} flat=0 total={n} degraded={n} repaired=0 quarantined={n} dedup=0 sampled_flat=0")
    );
    let fault = report.last_fault.expect("no fault recorded");
    assert!(fault.contains("quarantined"), "fault must name it: {fault}");
    // No channel with a failing certificate is left behind for later
    // requests: a quarantined solve is never cached.
    assert_eq!(r.msm().cached_channels(), 0);
}

#[test]
fn concurrent_hammering_keeps_counters_exact() {
    // N threads hammer report_with_tier concurrently — half of them with
    // a thread-scoped always-on fault, half healthy. The atomic tier
    // counters must account for every single report with no loss or
    // double-count, and per-thread tallies must agree with the shared
    // counters (Session arming is thread-scoped, so the faulty threads
    // degrade every report while the healthy threads never do).
    use std::sync::Arc;
    let r = Arc::new(resilient());
    let threads = 8u64;
    let per_thread = 150u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let faulty = t % 2 == 0;
                // cache.lock.poisoned faults every cache *read*, so a
                // faulty thread degrades even after healthy threads have
                // warmed the shared channel cache (an LP-solve site would
                // stop firing once the channels are cached).
                let _fp = faulty.then(|| {
                    let mut fp = Session::new();
                    fp.arm("cache.lock.poisoned", FailSpec::always());
                    fp
                });
                let mut rng = SeededRng::from_seed(500 + t);
                let mut tally = [0u64; 3];
                for i in 0..per_thread {
                    let x = Point::new(((t + i) % 8) as f64, (i % 5) as f64 + 0.4);
                    let (_, tier) = r.report_with_tier(x, &mut rng);
                    tally[tier.index()] += 1;
                }
                (faulty, tally)
            })
        })
        .collect();
    let mut expected = [0u64; 3];
    for h in handles {
        let (faulty, tally) = h.join().expect("worker panicked");
        let want_tier = if faulty { 1 } else { 0 };
        assert_eq!(
            tally[want_tier], per_thread,
            "a thread's reports leaked across tiers: {tally:?}"
        );
        for (acc, n) in expected.iter_mut().zip(tally) {
            *acc += n;
        }
    }
    let served = r.served_by_tier();
    assert_eq!(served, expected);
    assert_eq!(served.iter().sum::<u64>(), threads * per_thread);
    let report = r.degradation_report();
    assert_eq!(report.total(), threads * per_thread);
    assert_eq!(report.degraded(), (threads / 2) * per_thread);
}

#[test]
fn partial_fault_degrades_exactly_k_reports() {
    // A count-based spec injects exactly k faults; the ladder degrades
    // exactly k reports and then returns to the optimal tier.
    let k = 3u64;
    let mut fp = Session::new();
    fp.arm("lp.refactor.singular", FailSpec::times(k));
    let r = resilient();
    let mut rng = SeededRng::from_seed(21);
    let n = 20u64;
    let x = Point::new(4.2, 4.2); // fixed input: one descent path
    let mut tiers = Vec::new();
    for _ in 0..n {
        tiers.push(r.report_with_tier(x, &mut rng).1);
    }
    // Each degraded report consumes one fire (the failed solve aborts the
    // descent before any other LP work), so the first k degrade.
    assert!(tiers[..k as usize]
        .iter()
        .all(|&t| t == Tier::PerLevelLaplace));
    assert!(tiers[k as usize..].iter().all(|&t| t == Tier::Optimal));
    assert_eq!(fp.fired("lp.refactor.singular"), k);
    let report = r.degradation_report();
    assert_eq!(report.served_by_tier, [n - k, k, 0]);
    assert_eq!(report.total(), n);
}

#[test]
fn mid_descent_fault_resumes_from_the_reached_cell() {
    // The privacy-critical property behind the ladder's budget
    // accounting: when the optimal walk fails AFTER completing level 1,
    // the fallback must continue inside the level-1 cell that walk chose
    // (spending only the remaining level budgets) — never restart from
    // the root, which would re-spend the full ε on an input whose prefix
    // already consumed ε₁.
    let healthy = resilient();
    let faulty = resilient();
    // Warm both channel caches so a descent costs exactly one
    // cache.lock.poisoned hit per level (the lock_read of the fetch).
    healthy.msm().precompute(usize::MAX).unwrap();
    faulty.msm().precompute(usize::MAX).unwrap();
    let domain = healthy.msm().leaf_grid().domain();
    let hier = HierGrid::new(domain, 2, 2);
    let centers = healthy.msm().leaf_grid().centers();
    // A corner input: if a buggy fallback restarted at the root with the
    // full budget, its level-1 planar Laplace would frequently land
    // outside this corner's quadrant, so 25 rounds would catch it.
    let x = Point::new(0.6, 0.6);
    for round in 0..25u64 {
        // Identical fresh rng streams: the two walks sample the same
        // level-1 cell from the same cached channel before the armed
        // fault diverges them at level 2.
        let mut rng_h = SeededRng::from_seed(1_000 + round);
        let mut rng_f = SeededRng::from_seed(1_000 + round);
        let (zh, th) = healthy.report_with_tier(x, &mut rng_h);
        assert_eq!(th, Tier::Optimal);
        let mut fp = Session::new();
        fp.arm("cache.lock.poisoned", FailSpec::after(1, 1));
        let (zf, tf) = faulty.report_with_tier(x, &mut rng_f);
        assert_eq!(tf, Tier::PerLevelLaplace, "round {round}");
        assert_eq!(fp.fired("cache.lock.poisoned"), 1, "round {round}");
        drop(fp);
        assert!(
            centers.iter().any(|c| c.dist(zf) < 1e-12),
            "round {round}: degraded report {zf:?} is not a leaf center"
        );
        assert_eq!(
            hier.enclosing_cell(zh, 1),
            hier.enclosing_cell(zf, 1),
            "round {round}: fallback left the cell the optimal prefix \
             selected — it restarted instead of resuming"
        );
    }
    assert_eq!(faulty.served_by_tier(), [0, 25, 0]);
}

#[test]
fn ladder_without_tier1_serves_flat_automatically() {
    // Tier 2 is a real automatic rung: with the per-level fallback ruled
    // out (operator opt-down, or failed construction-time validation),
    // report-path faults degrade straight to the flat floor — through
    // report(), not the explicit report_flat() entry point.
    let mut fp = Session::new();
    fp.arm("lp.iterations.exhausted", FailSpec::always());
    let r = resilient().without_per_level_fallback();
    let mut rng = SeededRng::from_seed(71);
    let n = 8u64;
    for i in 0..n {
        let x = Point::new((i % 8) as f64, 2.0);
        let (z, tier) = r.report_with_tier(x, &mut rng);
        assert_eq!(tier, Tier::FlatLaplace);
        assert!(z.x.is_finite() && z.y.is_finite());
    }
    assert!(fp.fired("lp.iterations.exhausted") >= n);
    let report = r.degradation_report();
    assert_eq!(report.served_by_tier, [0, 0, n]);
    assert_eq!(report.degraded(), n);
    let fault = report.last_fault.expect("degradation recorded no fault");
    assert!(fault.contains("flat-laplace"), "unhelpful fault: {fault}");
}

#[test]
fn degraded_tier_passes_geoind_audit_at_full_budget() {
    // With the optimal path permanently broken, every report is served by
    // tier 1 — whose guarantee is the full composed ε. The empirical
    // channel must clear an ε-GeoInd audit.
    let mut fp = Session::new();
    fp.arm("lp.iterations.exhausted", FailSpec::always());
    let r = resilient();
    let domain = r.msm().leaf_grid().domain();
    let grid = Grid::new(domain, 4);
    let mut rng = SeededRng::from_seed(31);
    let report = audit_geoind(
        &r,
        EPS,
        &[(Point::new(2.0, 2.0), Point::new(6.0, 6.0))],
        &grid,
        AuditConfig {
            samples: 15_000,
            min_cell_count: 40,
        },
        &mut rng,
    );
    assert!(
        report.passes(0.5),
        "tier-1 channel flagged: excess {}",
        report.worst_excess()
    );
    let served = r.served_by_tier();
    assert_eq!(served[0], 0, "optimal tier served despite armed fault");
    assert_eq!(served[2], 0);
    assert_eq!(served[1], 2 * 15_000);
    assert!(fp.fired("lp.iterations.exhausted") >= served[1]);
}

#[test]
fn flat_tier_passes_geoind_audit_at_full_budget() {
    // Tier 2 through its *automatic* rung: tier 1 ruled out, every
    // optimal descent faulted at the root (before any sampling), so the
    // flat floor serves each request at the full composed ε. Audit it
    // through the ladder's normal report() path.
    let mut fp = Session::new();
    fp.arm("cache.lock.poisoned", FailSpec::always());
    let flat = resilient().without_per_level_fallback();
    let domain = flat.msm().leaf_grid().domain();
    let grid = Grid::new(domain, 4);
    let mut rng = SeededRng::from_seed(41);
    let report = audit_geoind(
        &flat,
        EPS,
        &[(Point::new(2.0, 2.0), Point::new(6.0, 6.0))],
        &grid,
        AuditConfig {
            samples: 15_000,
            min_cell_count: 40,
        },
        &mut rng,
    );
    assert!(
        report.passes(0.5),
        "tier-2 channel flagged: excess {}",
        report.worst_excess()
    );
    assert!(fp.fired("cache.lock.poisoned") >= 2 * 15_000);
    assert_eq!(flat.served_by_tier(), [0, 0, 2 * 15_000]);
}

#[test]
fn healthy_ladder_passes_audit_at_composition_bound() {
    // With nothing armed the ladder is exactly MSM; audit it against its
    // actual guarantee (the composition bound for the probe pair).
    let r = resilient();
    let a = Point::new(2.0, 2.0);
    let b = Point::new(6.0, 6.0);
    let effective_eps = r.msm().composition_bound(a, b) / a.dist(b);
    let domain = r.msm().leaf_grid().domain();
    let grid = Grid::new(domain, 4);
    let mut rng = SeededRng::from_seed(51);
    let report = audit_geoind(
        &r,
        effective_eps,
        &[(a, b)],
        &grid,
        AuditConfig {
            samples: 15_000,
            min_cell_count: 40,
        },
        &mut rng,
    );
    assert!(
        report.passes(0.5),
        "healthy ladder flagged: excess {}",
        report.worst_excess()
    );
    assert_eq!(r.served_by_tier(), [2 * 15_000, 0, 0]);
}
