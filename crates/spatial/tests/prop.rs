//! Property tests for the spatial substrate.

use geoind_spatial::geom::{BBox, Point};
use geoind_spatial::grid::Grid;
use geoind_spatial::hier::HierGrid;
use geoind_spatial::kdpart::KdPartition;
use geoind_spatial::kdtree::KdTree;
use proptest::prelude::*;

fn in_domain_point(side: f64) -> impl Strategy<Value = Point> {
    (0.0..side, 0.0..side).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    /// Every in-domain point belongs to exactly the cell whose extent
    /// contains it, and snapping is idempotent.
    #[test]
    fn grid_cell_of_is_consistent(
        p in in_domain_point(20.0),
        g in 1u32..20,
    ) {
        let grid = Grid::new(BBox::square(20.0), g);
        let id = grid.cell_of(p);
        prop_assert!(grid.extent_of(id).contains(p));
        let snapped = grid.snap(p);
        prop_assert_eq!(grid.cell_of(snapped), id);
        prop_assert_eq!(grid.snap(snapped), snapped);
        // Snapping moves at most half a cell diagonal.
        prop_assert!(p.dist(snapped) <= grid.cell_side() * std::f64::consts::SQRT_2 / 2.0 + 1e-12);
    }

    /// The hierarchical path to a point is an ancestor chain whose extents
    /// all contain the point, and each local index round-trips.
    #[test]
    fn hier_path_is_an_ancestor_chain(
        p in in_domain_point(16.0),
        g in 2u32..5,
        h in 1u32..4,
    ) {
        let hier = HierGrid::new(BBox::square(16.0), g, h);
        let path = hier.path_to(p);
        prop_assert_eq!(path.len(), h as usize);
        for (i, cell) in path.iter().enumerate() {
            prop_assert!(hier.extent(*cell).contains(p));
            prop_assert!(hier.local_index(*cell) < (g * g) as usize);
            if i > 0 {
                prop_assert_eq!(hier.parent(*cell), path[i - 1]);
                // The cell appears among its parent's children at its
                // local index.
                let kids = hier.children(path[i - 1]);
                prop_assert_eq!(kids[hier.local_index(*cell)], *cell);
            }
        }
    }

    /// k-d tree nearest neighbour equals brute force on arbitrary inputs.
    #[test]
    fn kdtree_nearest_equals_brute_force(
        pts in prop::collection::vec(in_domain_point(20.0), 1..80),
        q in in_domain_point(20.0),
    ) {
        let tree = KdTree::build(pts.iter().copied().enumerate().map(|(i, p)| (p, i)));
        let (_, _, d) = tree.nearest(q).unwrap();
        let brute = pts.iter().map(|p| p.dist(q)).fold(f64::INFINITY, f64::min);
        prop_assert!((d - brute).abs() < 1e-9);
    }

    /// k-d partition: every point descends to exactly one leaf whose box
    /// contains it, and leaf masses sum to the root mass.
    #[test]
    fn kdpart_descent_and_mass_conservation(
        pts in prop::collection::vec(in_domain_point(20.0), 0..200),
        q in in_domain_point(20.0),
        h in 1u32..4,
    ) {
        let part = KdPartition::build(BBox::square(20.0), &pts, 4, h);
        // Descent terminates at a leaf containing q.
        let mut node = part.root();
        for _ in 0..h {
            let child = part.child_containing(node, q);
            prop_assert!(child.is_some(), "point lost at node {node}");
            node = child.unwrap();
        }
        prop_assert!(part.node(node).children.is_empty());
        prop_assert!(part.node(node).bbox.contains_closed(q));
        // Mass conservation.
        let leaf_mass: f64 = part.leaves().iter().map(|&l| part.node(l).mass).sum();
        prop_assert!((leaf_mass - part.node(part.root()).mass).abs() < 1e-9);
    }
}
