//! Property tests for the spatial substrate (on the deterministic
//! `geoind-testkit` harness; failures print a per-case seed).

use geoind_spatial::geom::{BBox, Point};
use geoind_spatial::grid::Grid;
use geoind_spatial::hier::HierGrid;
use geoind_spatial::kdpart::KdPartition;
use geoind_spatial::kdtree::KdTree;
use geoind_testkit::gens::{f64_range, u32_range, vec_of, F64Range};
use geoind_testkit::{check, ensure, ensure_eq, Config};

/// Coordinates of an in-domain point; build `Point` inside the property so
/// shrinking stays active.
fn coord(side: f64) -> (F64Range, F64Range) {
    (f64_range(0.0, side), f64_range(0.0, side))
}

/// Every in-domain point belongs to exactly the cell whose extent
/// contains it, and snapping is idempotent.
#[test]
fn grid_cell_of_is_consistent() {
    check(
        "grid_cell_of_is_consistent",
        Config::cases(256),
        &(coord(20.0), u32_range(1, 20)),
        |&((x, y), g)| {
            let p = Point::new(x, y);
            let grid = Grid::new(BBox::square(20.0), g);
            let id = grid.cell_of(p);
            ensure!(grid.extent_of(id).contains(p));
            let snapped = grid.snap(p);
            ensure_eq!(grid.cell_of(snapped), id);
            ensure_eq!(grid.snap(snapped), snapped);
            // Snapping moves at most half a cell diagonal.
            ensure!(p.dist(snapped) <= grid.cell_side() * std::f64::consts::SQRT_2 / 2.0 + 1e-12);
            Ok(())
        },
    );
}

/// The hierarchical path to a point is an ancestor chain whose extents
/// all contain the point, and each local index round-trips.
#[test]
fn hier_path_is_an_ancestor_chain() {
    check(
        "hier_path_is_an_ancestor_chain",
        Config::cases(256),
        &(coord(16.0), u32_range(2, 5), u32_range(1, 4)),
        |&((x, y), g, h)| {
            let p = Point::new(x, y);
            let hier = HierGrid::new(BBox::square(16.0), g, h);
            let path = hier.path_to(p);
            ensure_eq!(path.len(), h as usize);
            for (i, cell) in path.iter().enumerate() {
                ensure!(hier.extent(*cell).contains(p));
                ensure!(hier.local_index(*cell) < (g * g) as usize);
                if i > 0 {
                    ensure_eq!(hier.parent(*cell), path[i - 1]);
                    // The cell appears among its parent's children at its
                    // local index.
                    let kids = hier.children(path[i - 1]);
                    ensure_eq!(kids[hier.local_index(*cell)], *cell);
                }
            }
            Ok(())
        },
    );
}

/// k-d tree nearest neighbour equals brute force on arbitrary inputs.
#[test]
fn kdtree_nearest_equals_brute_force() {
    check(
        "kdtree_nearest_equals_brute_force",
        Config::cases(128),
        &(vec_of(coord(20.0), 1, 80), coord(20.0)),
        |&(ref coords, (qx, qy))| {
            let pts: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let q = Point::new(qx, qy);
            let tree = KdTree::build(pts.iter().copied().enumerate().map(|(i, p)| (p, i)));
            let (_, _, d) = tree.nearest(q).unwrap();
            let brute = pts.iter().map(|p| p.dist(q)).fold(f64::INFINITY, f64::min);
            ensure!((d - brute).abs() < 1e-9);
            Ok(())
        },
    );
}

/// k-d partition: every point descends to exactly one leaf whose box
/// contains it, and leaf masses sum to the root mass.
#[test]
fn kdpart_descent_and_mass_conservation() {
    check(
        "kdpart_descent_and_mass_conservation",
        Config::cases(128),
        &(vec_of(coord(20.0), 0, 200), coord(20.0), u32_range(1, 4)),
        |&(ref coords, (qx, qy), h)| {
            let pts: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let q = Point::new(qx, qy);
            let part = KdPartition::build(BBox::square(20.0), &pts, 4, h);
            // Descent terminates at a leaf containing q.
            let mut node = part.root();
            for _ in 0..h {
                let child = part.child_containing(node, q);
                ensure!(child.is_some(), "point lost at node {node}");
                node = child.unwrap();
            }
            ensure!(part.node(node).children.is_empty());
            ensure!(part.node(node).bbox.contains_closed(q));
            // Mass conservation.
            let leaf_mass: f64 = part.leaves().iter().map(|&l| part.node(l).mass).sum();
            ensure!((leaf_mass - part.node(part.root()).mass).abs() < 1e-9);
            Ok(())
        },
    );
}
