//! GIHI — the GeoInd-preserving Hierarchical Index (paper Section 4, Fig. 4).
//!
//! A [`HierGrid`] of granularity `g` and height `h` refines a square domain
//! top-down: level 0 is the *virtual root* (the whole domain), level `i` is
//! an effective `gⁱ × gⁱ` grid, and each level-`i` cell has exactly `g²`
//! children at level `i+1` lying inside its spatial extent.
//!
//! The multi-step mechanism walks one root-to-leaf path of this structure,
//! solving a `g²`-location optimal mechanism inside the chosen cell at every
//! level.

use crate::geom::{BBox, Point};
use crate::grid::{CellId, Grid};

/// A cell addressed by `(level, id)` where `id` indexes the effective
/// `g^level × g^level` grid of that level in row-major order.
///
/// `level == 0` always has `id == 0`: the virtual root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LevelCell {
    /// Tree level; 0 is the virtual root.
    pub level: u32,
    /// Row-major index within the effective grid of `level`.
    pub id: CellId,
}

impl LevelCell {
    /// The virtual root node covering the whole domain.
    pub const ROOT: LevelCell = LevelCell { level: 0, id: 0 };
}

/// Hierarchical grid index with fan-out `g²` per node.
#[derive(Debug, Clone)]
pub struct HierGrid {
    domain: BBox,
    g: u32,
    height: u32,
}

impl HierGrid {
    /// Build a GIHI of granularity `g` (fan-out `g²`) and `height` levels
    /// below the virtual root.
    ///
    /// # Panics
    /// Panics if `g < 2`, `height == 0`, or the effective leaf granularity
    /// `g^height` overflows `u32`.
    pub fn new(domain: BBox, g: u32, height: u32) -> Self {
        assert!(g >= 2, "hierarchical grid needs fan-out >= 2, got g={g}");
        assert!(height >= 1, "height must be >= 1");
        let mut eff: u64 = 1;
        for _ in 0..height {
            eff = eff.checked_mul(g as u64).expect("granularity overflow");
            assert!(eff <= u32::MAX as u64, "effective granularity overflows");
        }
        domain.side(); // assert squareness
        Self { domain, g, height }
    }

    /// Per-level granularity `g`.
    pub fn granularity(&self) -> u32 {
        self.g
    }

    /// Number of levels below the root.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The covered domain.
    pub fn domain(&self) -> BBox {
        self.domain
    }

    /// Effective granularity `g^level` of a level (level 0 ⇒ 1).
    pub fn effective_granularity(&self, level: u32) -> u32 {
        assert!(level <= self.height, "level {level} exceeds height");
        self.g.pow(level)
    }

    /// The effective grid at `level` (level 0 is a single-cell grid).
    pub fn level_grid(&self, level: u32) -> Grid {
        Grid::new(self.domain, self.effective_granularity(level).max(1))
    }

    /// Spatial extent of a cell.
    pub fn extent(&self, cell: LevelCell) -> BBox {
        self.level_grid(cell.level).extent_of(cell.id)
    }

    /// Center (logical location) of a cell.
    pub fn center(&self, cell: LevelCell) -> Point {
        self.level_grid(cell.level).center_of(cell.id)
    }

    /// The cell of `level` enclosing point `p` (paper: `EnclosingCell(x, i)`).
    pub fn enclosing_cell(&self, p: Point, level: u32) -> LevelCell {
        LevelCell {
            level,
            id: self.level_grid(level).cell_of(p),
        }
    }

    /// The parent of a non-root cell.
    pub fn parent(&self, cell: LevelCell) -> LevelCell {
        assert!(cell.level >= 1, "root has no parent");
        let child_grid = self.level_grid(cell.level);
        let (row, col) = child_grid.row_col(cell.id);
        let parent_level = cell.level - 1;
        if parent_level == 0 {
            return LevelCell::ROOT;
        }
        let pg = self.effective_granularity(parent_level) as usize;
        let (prow, pcol) = ((row / self.g) as usize, (col / self.g) as usize);
        LevelCell {
            level: parent_level,
            id: prow * pg + pcol,
        }
    }

    /// The `g²` children of a cell at `cell.level + 1`, in row-major order of
    /// the *local* `g×g` subgrid (local index `lr·g + lc`).
    ///
    /// # Panics
    /// Panics if `cell.level == height` (leaves have no children).
    pub fn children(&self, cell: LevelCell) -> Vec<LevelCell> {
        assert!(cell.level < self.height, "leaf cells have no children");
        let child_level = cell.level + 1;
        let cg = self.effective_granularity(child_level) as usize;
        let (row, col) = if cell.level == 0 {
            (0u32, 0u32)
        } else {
            self.level_grid(cell.level).row_col(cell.id)
        };
        let (base_r, base_c) = ((row * self.g) as usize, (col * self.g) as usize);
        let mut out = Vec::with_capacity((self.g * self.g) as usize);
        for lr in 0..self.g as usize {
            for lc in 0..self.g as usize {
                out.push(LevelCell {
                    level: child_level,
                    id: (base_r + lr) * cg + base_c + lc,
                });
            }
        }
        out
    }

    /// Local `g×g` index (row-major) of a level-`i` cell within its parent.
    pub fn local_index(&self, cell: LevelCell) -> usize {
        assert!(cell.level >= 1);
        let (row, col) = self.level_grid(cell.level).row_col(cell.id);
        ((row % self.g) * self.g + (col % self.g)) as usize
    }

    /// Root-to-leaf path of cells enclosing `p` (levels `1..=height`).
    pub fn path_to(&self, p: Point) -> Vec<LevelCell> {
        (1..=self.height)
            .map(|l| self.enclosing_cell(p, l))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gihi() -> HierGrid {
        HierGrid::new(BBox::square(8.0), 2, 3)
    }

    #[test]
    fn effective_granularities() {
        let h = gihi();
        assert_eq!(h.effective_granularity(0), 1);
        assert_eq!(h.effective_granularity(1), 2);
        assert_eq!(h.effective_granularity(2), 4);
        assert_eq!(h.effective_granularity(3), 8);
    }

    #[test]
    fn children_lie_inside_parent() {
        let h = gihi();
        for level in 0..h.height() {
            let n = h.effective_granularity(level) as usize;
            for id in 0..n * n {
                let cell = LevelCell { level, id };
                let ext = h.extent(cell);
                let kids = h.children(cell);
                assert_eq!(kids.len(), 4);
                for k in kids {
                    let ke = h.extent(k);
                    assert!(ext.contains_closed(ke.min) && ext.contains_closed(ke.max));
                    assert_eq!(h.parent(k), cell);
                }
            }
        }
    }

    #[test]
    fn children_are_in_local_row_major_order() {
        let h = gihi();
        let kids = h.children(LevelCell::ROOT);
        // Local order: bottom-left, bottom-right, top-left, top-right.
        assert_eq!(kids[0].id, 0);
        assert_eq!(kids[1].id, 1);
        assert_eq!(kids[2].id, 2);
        assert_eq!(kids[3].id, 3);
        for (i, k) in kids.iter().enumerate() {
            assert_eq!(h.local_index(*k), i);
        }
    }

    #[test]
    fn path_to_is_nested_and_encloses_point() {
        let h = gihi();
        let p = Point::new(6.3, 1.2);
        let path = h.path_to(p);
        assert_eq!(path.len(), 3);
        for (i, cell) in path.iter().enumerate() {
            assert_eq!(cell.level, i as u32 + 1);
            assert!(h.extent(*cell).contains(p));
        }
        for w in path.windows(2) {
            assert_eq!(h.parent(w[1]), w[0]);
        }
    }

    #[test]
    fn g3_local_indexing() {
        let h = HierGrid::new(BBox::square(9.0), 3, 2);
        // Level-2 cell containing (8.9, 0.1): row 0, col 8 -> id 8.
        let c = h.enclosing_cell(Point::new(8.9, 0.1), 2);
        assert_eq!(c.id, 8);
        assert_eq!(h.local_index(c), 2); // col 8 % 3 = 2, row 0 % 3 = 0
        assert_eq!(h.parent(c), LevelCell { level: 1, id: 2 });
    }

    #[test]
    fn level_zero_is_whole_domain() {
        let h = gihi();
        let e = h.extent(LevelCell::ROOT);
        assert_eq!(e, h.domain());
        assert_eq!(h.center(LevelCell::ROOT), Point::new(4.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "leaf cells have no children")]
    fn leaf_children_panic() {
        let h = gihi();
        h.children(LevelCell { level: 3, id: 0 });
    }

    #[test]
    #[should_panic(expected = "fan-out")]
    fn g1_rejected() {
        HierGrid::new(BBox::square(1.0), 1, 2);
    }
}
