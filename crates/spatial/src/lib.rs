//! Spatial substrate for geo-indistinguishability.
//!
//! The paper operates on a square planar region (a 20×20 km city) carved into
//! regular grids, a hierarchical grid index (**GIHI**, Fig. 4), and — as a
//! future-work extension — prior-adaptive hierarchical partitions. This crate
//! provides all of those plus a k-d tree for nearest-neighbour remapping,
//! entirely from scratch:
//!
//! * [`geom`] — points in a km-plane, axis-aligned boxes, distances, and an
//!   equirectangular lat/lon↔km projection for ingesting real check-ins.
//! * [`grid`] — the uniform `g×g` grid with cell snapping and centers.
//! * [`hier`] — the hierarchical grid index: per-level addressing, enclosing
//!   cells, spatial extents (Section 4 of the paper).
//! * [`kdtree`] — exact nearest-neighbour / k-NN queries over point sets.
//! * [`kdpart`] — a k-d–style *partition* tree that splits on prior mass,
//!   usable as an alternative MSM index (paper Section 8).
//! * [`quadtree`] — an adaptive quadtree that refines only dense regions.
//! * [`partition`] — the [`SpacePartition`] trait MSM walks, implemented by
//!   both adaptive indexes.

#![warn(missing_docs)]
// Index-based loops over parallel arrays are the clearest style for the
// numeric kernels here; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
// Test reference constants keep full printed precision from their sources.
#![allow(clippy::excessive_precision)]

pub mod geom;
pub mod grid;
pub mod hier;
pub mod kdpart;
pub mod kdtree;
pub mod partition;
pub mod quadtree;

pub use geom::{BBox, Point};
pub use grid::{CellId, Grid};
pub use hier::{HierGrid, LevelCell};
pub use kdpart::KdPartition;
pub use kdtree::KdTree;
pub use partition::SpacePartition;
pub use quadtree::AdaptiveQuadtree;
