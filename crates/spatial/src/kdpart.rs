//! Prior-adaptive k-d partition — the paper's Section-8 future-work index.
//!
//! The GIHI of [`crate::hier`] splits space uniformly; when the prior is
//! heavily skewed (all check-ins downtown), most grid cells are empty and the
//! per-level optimal mechanism wastes its locations on them. A
//! [`KdPartition`] instead splits each node region at the *weighted median*
//! of the observed points, alternating axes, so every child carries roughly
//! equal prior mass. MSM can walk this structure exactly like the grid: the
//! children of a node tile its region without overlap, which is the only
//! property the composability argument needs.

use crate::geom::{BBox, Point};

/// One node of the partition tree.
#[derive(Debug, Clone)]
pub struct PartNode {
    /// Spatial extent; children tile this box exactly.
    pub bbox: BBox,
    /// Child node ids (empty for leaves).
    pub children: Vec<usize>,
    /// Fraction of the training points inside this node's box.
    pub mass: f64,
    /// Depth below the root (root is level 0).
    pub level: u32,
}

/// A hierarchical space partition with power-of-two fan-out, built by
/// recursive weighted-median splits of a training point set.
#[derive(Debug, Clone)]
pub struct KdPartition {
    nodes: Vec<PartNode>,
    root: usize,
    fanout: usize,
    height: u32,
}

impl KdPartition {
    /// Build a partition of `domain` with `fanout` children per node and
    /// `height` levels below the root, adapted to `points`.
    ///
    /// Nodes whose region contains no training points are split at the
    /// geometric middle instead of a median.
    ///
    /// # Panics
    /// Panics if `fanout` is not a power of two `≥ 2` or `height == 0`.
    pub fn build(domain: BBox, points: &[Point], fanout: usize, height: u32) -> Self {
        assert!(
            fanout >= 2 && fanout.is_power_of_two(),
            "fanout must be a power of two >= 2"
        );
        assert!(height >= 1, "height must be >= 1");
        let mut nodes = Vec::new();
        let inside: Vec<Point> = points
            .iter()
            .copied()
            .filter(|p| domain.contains(*p))
            .collect();
        let total = inside.len().max(1) as f64;
        let mut scratch = inside;
        let root = Self::build_rec(domain, &mut scratch, fanout, height, 0, total, &mut nodes);
        Self {
            nodes,
            root,
            fanout,
            height,
        }
    }

    fn build_rec(
        bbox: BBox,
        pts: &mut [Point],
        fanout: usize,
        height: u32,
        level: u32,
        total: f64,
        nodes: &mut Vec<PartNode>,
    ) -> usize {
        let mass = pts.len() as f64 / total;
        if level == height {
            nodes.push(PartNode {
                bbox,
                children: Vec::new(),
                mass,
                level,
            });
            return nodes.len() - 1;
        }
        // Split this region into `fanout` pieces by repeated median splits.
        let mut pieces: Vec<(BBox, std::ops::Range<usize>)> = vec![(bbox, 0..pts.len())];
        while pieces.len() < fanout {
            let mut next = Vec::with_capacity(pieces.len() * 2);
            for (pb, range) in pieces {
                let slice = &mut pts[range.clone()];
                let axis = if pb.width() >= pb.height() { 0u8 } else { 1u8 };
                let split = Self::split_coord(pb, slice, axis);
                let mid = partition_points(slice, axis, split);
                let (b_lo, b_hi) = split_box(pb, axis, split);
                next.push((b_lo, range.start..range.start + mid));
                next.push((b_hi, range.start + mid..range.end));
            }
            pieces = next;
        }
        let mut children = Vec::with_capacity(fanout);
        for (pb, range) in pieces {
            let child =
                Self::build_rec(pb, &mut pts[range], fanout, height, level + 1, total, nodes);
            children.push(child);
        }
        nodes.push(PartNode {
            bbox,
            children,
            mass,
            level,
        });
        nodes.len() - 1
    }

    /// Pick a split coordinate: weighted median if points exist, box middle
    /// otherwise; always strictly inside the box so children are
    /// non-degenerate.
    fn split_coord(bbox: BBox, pts: &mut [Point], axis: u8) -> f64 {
        let (lo, hi) = if axis == 0 {
            (bbox.min.x, bbox.max.x)
        } else {
            (bbox.min.y, bbox.max.y)
        };
        let mid_default = 0.5 * (lo + hi);
        if pts.len() < 2 {
            return mid_default;
        }
        let m = pts.len() / 2;
        pts.select_nth_unstable_by(m, |a, b| {
            let (ka, kb) = if axis == 0 { (a.x, b.x) } else { (a.y, b.y) };
            ka.partial_cmp(&kb).expect("NaN coordinate")
        });
        let med = if axis == 0 { pts[m].x } else { pts[m].y };
        // Keep a minimum sliver on each side to avoid degenerate boxes.
        let eps = 1e-9 * (hi - lo).max(1.0);
        med.clamp(lo + eps, hi - eps)
    }

    /// Root node id.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Fan-out per internal node.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Levels below the root.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Access a node.
    pub fn node(&self, id: usize) -> &PartNode {
        &self.nodes[id]
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: a partition has at least the root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The child of `id` whose box contains `p`, if any.
    pub fn child_containing(&self, id: usize, p: Point) -> Option<usize> {
        self.nodes[id].children.iter().copied().find(|&c| {
            let b = self.nodes[c].bbox;
            // Treat shared edges as belonging to the lower/left child via
            // half-open membership, but accept the global closed boundary.
            b.contains(p)
                || (p.x == b.max.x
                    && b.max.x == self.nodes[self.root].bbox.max.x
                    && p.y >= b.min.y
                    && p.y < b.max.y)
                || (p.y == b.max.y
                    && b.max.y == self.nodes[self.root].bbox.max.y
                    && p.x >= b.min.x
                    && p.x < b.max.x)
                || (p.x == b.max.x
                    && b.max.x == self.nodes[self.root].bbox.max.x
                    && p.y == b.max.y
                    && b.max.y == self.nodes[self.root].bbox.max.y)
        })
    }

    /// All leaf node ids.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].children.is_empty())
            .collect()
    }
}

/// In-place partition of points by `coord < split`; returns the boundary.
fn partition_points(pts: &mut [Point], axis: u8, split: f64) -> usize {
    let mut i = 0usize;
    let mut j = pts.len();
    while i < j {
        let k = if axis == 0 { pts[i].x } else { pts[i].y };
        if k < split {
            i += 1;
        } else {
            j -= 1;
            pts.swap(i, j);
        }
    }
    i
}

fn split_box(b: BBox, axis: u8, split: f64) -> (BBox, BBox) {
    if axis == 0 {
        (
            BBox::new(b.min, Point::new(split, b.max.y)),
            BBox::new(Point::new(split, b.min.y), b.max),
        )
    } else {
        (
            BBox::new(b.min, Point::new(b.max.x, split)),
            BBox::new(Point::new(b.min.x, split), b.max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoind_rng::{Rng, SeededRng};

    fn skewed_points(n: usize, seed: u64) -> Vec<Point> {
        // Cluster near (2,2) in a 20x20 domain.
        let mut rng = SeededRng::from_seed(seed);
        (0..n)
            .map(|_| {
                Point::new(
                    (2.0 + rng.gen_range(-1.5..1.5f64)).clamp(0.0, 19.99),
                    (2.0 + rng.gen_range(-1.5..1.5f64)).clamp(0.0, 19.99),
                )
            })
            .collect()
    }

    #[test]
    fn children_tile_parent_exactly() {
        let pts = skewed_points(1000, 3);
        let part = KdPartition::build(BBox::square(20.0), &pts, 4, 3);
        for id in 0..part.len() {
            let node = part.node(id);
            if node.children.is_empty() {
                continue;
            }
            let area: f64 = node
                .children
                .iter()
                .map(|&c| {
                    let b = part.node(c).bbox;
                    b.width() * b.height()
                })
                .sum();
            let pa = node.bbox.width() * node.bbox.height();
            assert!((area - pa).abs() < 1e-6 * pa, "node {id}: {area} vs {pa}");
            let mass: f64 = node.children.iter().map(|&c| part.node(c).mass).sum();
            assert!((mass - node.mass).abs() < 1e-9);
        }
    }

    #[test]
    fn masses_balanced_on_skewed_data() {
        let pts = skewed_points(4000, 5);
        let part = KdPartition::build(BBox::square(20.0), &pts, 4, 1);
        let root = part.node(part.root());
        // Weighted-median splits put ~1/4 mass in each child (within slack
        // for duplicate coordinates).
        for &c in &root.children {
            let m = part.node(c).mass;
            assert!((m - 0.25).abs() < 0.05, "child mass {m}");
        }
    }

    #[test]
    fn child_containing_finds_unique_child() {
        let pts = skewed_points(500, 7);
        let part = KdPartition::build(BBox::square(20.0), &pts, 4, 2);
        let mut rng = SeededRng::from_seed(8);
        for _ in 0..500 {
            let p = Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0));
            let mut node = part.root();
            for _ in 0..part.height() {
                let c = part
                    .child_containing(node, p)
                    .expect("point lost during descent");
                assert!(part.node(c).bbox.contains_closed(p));
                node = c;
            }
        }
    }

    #[test]
    fn empty_training_set_splits_geometrically() {
        let part = KdPartition::build(BBox::square(16.0), &[], 4, 2);
        // With no data the splits are at box middles: leaf boxes are 4x4.
        for leaf in part.leaves() {
            let b = part.node(leaf).bbox;
            assert!((b.width() - 4.0).abs() < 1e-6);
            assert!((b.height() - 4.0).abs() < 1e-6);
        }
    }

    #[test]
    fn leaf_count_matches_fanout_and_height() {
        let pts = skewed_points(100, 9);
        let part = KdPartition::build(BBox::square(20.0), &pts, 4, 3);
        assert_eq!(part.leaves().len(), 4usize.pow(3));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_fanout_panics() {
        KdPartition::build(BBox::square(1.0), &[], 3, 1);
    }
}
