//! A k-d tree over planar points with exact nearest-neighbour queries.
//!
//! Used to remap continuous planar-Laplace output onto a discrete candidate
//! set `Z` (the post-processing step of Chatzikokolakis et al. that the
//! paper applies to the PL baseline), and by the example applications for
//! POI retrieval.

use crate::geom::Point;

/// Immutable k-d tree storing `(Point, payload-index)` pairs.
///
/// Built once in O(n log n) by median splitting; queries are exact.
#[derive(Debug, Clone)]
pub struct KdTree {
    // Implicit binary tree in an array; node i has children 2i+1 / 2i+2 is
    // NOT used here — instead nodes store explicit child offsets to keep the
    // build simple and cache-friendly after the in-place partition.
    nodes: Vec<Node>,
    root: Option<usize>,
}

#[derive(Debug, Clone)]
struct Node {
    point: Point,
    /// Caller-supplied index (e.g. cell id or POI id).
    item: usize,
    axis: u8,
    left: Option<usize>,
    right: Option<usize>,
}

impl KdTree {
    /// Build from `(point, item)` pairs. An empty input yields an empty tree.
    pub fn build(items: impl IntoIterator<Item = (Point, usize)>) -> Self {
        let mut pts: Vec<(Point, usize)> = items.into_iter().collect();
        let mut nodes = Vec::with_capacity(pts.len());
        let n = pts.len();
        let root = if n == 0 {
            None
        } else {
            Some(Self::build_rec(&mut pts, 0, &mut nodes))
        };
        let _ = n;
        Self { nodes, root }
    }

    fn build_rec(pts: &mut [(Point, usize)], depth: u8, nodes: &mut Vec<Node>) -> usize {
        let axis = depth % 2;
        let mid = pts.len() / 2;
        pts.select_nth_unstable_by(mid, |a, b| {
            let (ka, kb) = if axis == 0 {
                (a.0.x, b.0.x)
            } else {
                (a.0.y, b.0.y)
            };
            ka.partial_cmp(&kb).expect("NaN coordinate in k-d tree")
        });
        let (point, item) = pts[mid];
        let (lo, hi) = pts.split_at_mut(mid);
        let hi = &mut hi[1..];
        let left = if lo.is_empty() {
            None
        } else {
            Some(Self::build_rec(lo, depth + 1, nodes))
        };
        let right = if hi.is_empty() {
            None
        } else {
            Some(Self::build_rec(hi, depth + 1, nodes))
        };
        nodes.push(Node {
            point,
            item,
            axis,
            left,
            right,
        });
        nodes.len() - 1
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree stores no points.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Exact nearest neighbour of `q`: returns `(point, item, distance)`.
    /// `None` on an empty tree. Ties are broken arbitrarily (first found).
    pub fn nearest(&self, q: Point) -> Option<(Point, usize, f64)> {
        let root = self.root?;
        let mut best: Option<(usize, f64)> = None;
        self.nearest_rec(root, q, &mut best);
        best.map(|(idx, d2)| {
            let n = &self.nodes[idx];
            (n.point, n.item, d2.sqrt())
        })
    }

    fn nearest_rec(&self, idx: usize, q: Point, best: &mut Option<(usize, f64)>) {
        let node = &self.nodes[idx];
        let d2 = node.point.dist2(q);
        if best.is_none_or(|(_, bd2)| d2 < bd2) {
            *best = Some((idx, d2));
        }
        let diff = if node.axis == 0 {
            q.x - node.point.x
        } else {
            q.y - node.point.y
        };
        let (near, far) = if diff < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.nearest_rec(n, q, best);
        }
        // Only descend the far side if the splitting plane is closer than
        // the current best.
        if let Some(f) = far {
            if best.is_none_or(|(_, bd2)| diff * diff < bd2) {
                self.nearest_rec(f, q, best);
            }
        }
    }

    /// The `k` nearest neighbours, sorted by ascending distance.
    pub fn k_nearest(&self, q: Point, k: usize) -> Vec<(Point, usize, f64)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        // Max-heap of (d2, idx) capped at k, kept as a sorted vec (k is
        // small in all our uses).
        let mut heap: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        self.knn_rec(self.root.unwrap(), q, k, &mut heap);
        heap.into_iter()
            .map(|(d2, idx)| {
                let n = &self.nodes[idx];
                (n.point, n.item, d2.sqrt())
            })
            .collect()
    }

    fn knn_rec(&self, idx: usize, q: Point, k: usize, heap: &mut Vec<(f64, usize)>) {
        let node = &self.nodes[idx];
        let d2 = node.point.dist2(q);
        let pos = heap.partition_point(|&(hd2, _)| hd2 < d2);
        if pos < k {
            heap.insert(pos, (d2, idx));
            heap.truncate(k);
        }
        let diff = if node.axis == 0 {
            q.x - node.point.x
        } else {
            q.y - node.point.y
        };
        let (near, far) = if diff < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        if let Some(n) = near {
            self.knn_rec(n, q, k, heap);
        }
        if let Some(f) = far {
            let worst = if heap.len() < k {
                f64::INFINITY
            } else {
                heap[heap.len() - 1].0
            };
            if diff * diff < worst {
                self.knn_rec(f, q, k, heap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoind_rng::{Rng, SeededRng};

    fn random_points(n: usize, seed: u64) -> Vec<(Point, usize)> {
        let mut rng = SeededRng::from_seed(seed);
        (0..n)
            .map(|i| {
                (
                    Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)),
                    i,
                )
            })
            .collect()
    }

    fn brute_nearest(pts: &[(Point, usize)], q: Point) -> (usize, f64) {
        pts.iter()
            .map(|&(p, i)| (i, p.dist(q)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::build(std::iter::empty());
        assert!(t.is_empty());
        assert!(t.nearest(Point::new(0.0, 0.0)).is_none());
        assert!(t.k_nearest(Point::new(0.0, 0.0), 3).is_empty());
    }

    #[test]
    fn single_point() {
        let t = KdTree::build([(Point::new(1.0, 2.0), 42)]);
        let (p, item, d) = t.nearest(Point::new(4.0, 6.0)).unwrap();
        assert_eq!(p, Point::new(1.0, 2.0));
        assert_eq!(item, 42);
        assert_eq!(d, 5.0);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(500, 11);
        let t = KdTree::build(pts.iter().copied());
        let mut rng = SeededRng::from_seed(12);
        for _ in 0..1000 {
            let q = Point::new(rng.gen_range(-5.0..25.0), rng.gen_range(-5.0..25.0));
            let (bi, bd) = brute_nearest(&pts, q);
            let (_, i, d) = t.nearest(q).unwrap();
            assert!(
                (d - bd).abs() < 1e-12,
                "query {q:?}: got {i}@{d}, want {bi}@{bd}"
            );
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = random_points(200, 21);
        let t = KdTree::build(pts.iter().copied());
        let mut rng = SeededRng::from_seed(22);
        for _ in 0..200 {
            let q = Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0));
            let k = rng.gen_range(1..=10usize);
            let got = t.k_nearest(q, k);
            assert_eq!(got.len(), k);
            let mut all: Vec<f64> = pts.iter().map(|&(p, _)| p.dist(q)).collect();
            all.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (j, (_, _, d)) in got.iter().enumerate() {
                assert!((d - all[j]).abs() < 1e-12);
            }
            // Sorted ascending.
            for w in got.windows(2) {
                assert!(w[0].2 <= w[1].2);
            }
        }
    }

    #[test]
    fn knn_with_k_larger_than_n() {
        let pts = random_points(5, 31);
        let t = KdTree::build(pts.iter().copied());
        let got = t.k_nearest(Point::new(10.0, 10.0), 20);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn duplicate_points_handled() {
        let p = Point::new(3.0, 3.0);
        let t = KdTree::build([(p, 0), (p, 1), (p, 2)]);
        assert_eq!(t.len(), 3);
        let got = t.k_nearest(p, 3);
        assert_eq!(got.len(), 3);
        for (_, _, d) in got {
            assert_eq!(d, 0.0);
        }
    }
}
