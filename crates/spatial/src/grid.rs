//! Uniform `g×g` grid over a square domain.
//!
//! The paper discretizes the dataspace into *logical locations*: cell centers
//! of a regular grid (Section 3.1). [`Grid`] provides the bidirectional
//! mapping between continuous points and cells, in row-major cell order
//! (`id = row·g + col`, row 0 at the bottom).

use crate::geom::{BBox, Point};

/// Index of a cell in row-major order.
pub type CellId = usize;

/// A regular `g×g` grid over a square [`BBox`].
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    domain: BBox,
    g: u32,
    cell_side: f64,
}

impl Grid {
    /// Build a `g×g` grid over `domain` (must be square).
    ///
    /// # Panics
    /// Panics if `g == 0` or the domain is not square.
    pub fn new(domain: BBox, g: u32) -> Self {
        assert!(g >= 1, "granularity must be >= 1");
        let side = domain.side();
        Self {
            domain,
            g,
            cell_side: side / g as f64,
        }
    }

    /// Grid granularity `g`.
    pub fn granularity(&self) -> u32 {
        self.g
    }

    /// Total number of cells, `g²`.
    pub fn num_cells(&self) -> usize {
        (self.g as usize) * (self.g as usize)
    }

    /// The square domain covered.
    pub fn domain(&self) -> BBox {
        self.domain
    }

    /// Side length of one cell (km).
    pub fn cell_side(&self) -> f64 {
        self.cell_side
    }

    /// Cell enclosing `p`. Points outside the domain are clamped to the
    /// nearest boundary cell (this mirrors `EnclosingCell` in the paper,
    /// which is only ever called on in-domain points; clamping makes the API
    /// total).
    pub fn cell_of(&self, p: Point) -> CellId {
        let col = (((p.x - self.domain.min.x) / self.cell_side).floor() as i64)
            .clamp(0, self.g as i64 - 1) as usize;
        let row = (((p.y - self.domain.min.y) / self.cell_side).floor() as i64)
            .clamp(0, self.g as i64 - 1) as usize;
        row * self.g as usize + col
    }

    /// `(row, col)` of a cell.
    pub fn row_col(&self, id: CellId) -> (u32, u32) {
        assert!(id < self.num_cells(), "cell id {id} out of range");
        ((id / self.g as usize) as u32, (id % self.g as usize) as u32)
    }

    /// Cell id from `(row, col)`.
    pub fn cell_at(&self, row: u32, col: u32) -> CellId {
        assert!(row < self.g && col < self.g);
        row as usize * self.g as usize + col as usize
    }

    /// Center of a cell — the *logical location* the paper snaps to.
    pub fn center_of(&self, id: CellId) -> Point {
        let (row, col) = self.row_col(id);
        Point::new(
            self.domain.min.x + (col as f64 + 0.5) * self.cell_side,
            self.domain.min.y + (row as f64 + 0.5) * self.cell_side,
        )
    }

    /// Spatial extent of a cell.
    pub fn extent_of(&self, id: CellId) -> BBox {
        let (row, col) = self.row_col(id);
        let min = Point::new(
            self.domain.min.x + col as f64 * self.cell_side,
            self.domain.min.y + row as f64 * self.cell_side,
        );
        BBox::new(min, min.offset(self.cell_side, self.cell_side))
    }

    /// Snap a point to the center of its enclosing cell.
    pub fn snap(&self, p: Point) -> Point {
        self.center_of(self.cell_of(p))
    }

    /// All cell centers, in cell-id order.
    pub fn centers(&self) -> Vec<Point> {
        (0..self.num_cells()).map(|id| self.center_of(id)).collect()
    }

    /// Euclidean distance between the centers of two cells (km).
    pub fn center_dist(&self, a: CellId, b: CellId) -> f64 {
        self.center_of(a).dist(self.center_of(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid3() -> Grid {
        Grid::new(BBox::square(9.0), 3)
    }

    #[test]
    fn geometry_basics() {
        let g = grid3();
        assert_eq!(g.num_cells(), 9);
        assert_eq!(g.cell_side(), 3.0);
        assert_eq!(g.center_of(0), Point::new(1.5, 1.5));
        assert_eq!(g.center_of(8), Point::new(7.5, 7.5));
        assert_eq!(g.center_of(5), Point::new(7.5, 4.5)); // row 1, col 2
    }

    #[test]
    fn cell_of_and_center_roundtrip() {
        let g = grid3();
        for id in 0..g.num_cells() {
            assert_eq!(g.cell_of(g.center_of(id)), id);
        }
    }

    #[test]
    fn cell_of_boundary_points() {
        let g = grid3();
        // Exact lower corner belongs to cell 0; upper corner clamps to 8.
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), 0);
        assert_eq!(g.cell_of(Point::new(9.0, 9.0)), 8);
        // Interior cell edge belongs to the upper cell (half-open).
        assert_eq!(g.cell_of(Point::new(3.0, 0.0)), 1);
    }

    #[test]
    fn out_of_domain_clamps() {
        let g = grid3();
        assert_eq!(g.cell_of(Point::new(-5.0, -5.0)), 0);
        assert_eq!(g.cell_of(Point::new(100.0, 100.0)), 8);
    }

    #[test]
    fn extent_contains_center_and_tiles_domain() {
        let g = grid3();
        let mut area = 0.0;
        for id in 0..g.num_cells() {
            let e = g.extent_of(id);
            assert!(e.contains(g.center_of(id)));
            area += e.width() * e.height();
        }
        assert!((area - 81.0).abs() < 1e-9);
    }

    #[test]
    fn row_col_roundtrip() {
        let g = Grid::new(BBox::square(20.0), 7);
        for id in 0..g.num_cells() {
            let (r, c) = g.row_col(id);
            assert_eq!(g.cell_at(r, c), id);
        }
    }

    #[test]
    fn center_dist_symmetric() {
        let g = grid3();
        assert_eq!(g.center_dist(0, 8), g.center_dist(8, 0));
        assert!((g.center_dist(0, 1) - 3.0).abs() < 1e-12);
        assert!((g.center_dist(0, 4) - (18.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn snap_idempotent() {
        let g = grid3();
        let p = Point::new(2.2, 7.9);
        let s = g.snap(p);
        assert_eq!(g.snap(s), s);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_cell_id_panics() {
        grid3().center_of(9);
    }
}
