//! A common interface over hierarchical space partitions.
//!
//! The multi-step mechanism only needs four things from an index: a root,
//! children that tile their parent's region without overlap, each node's
//! spatial extent, and a prior mass per node. [`SpacePartition`] captures
//! exactly that, so MSM runs unchanged over the uniform grid, the
//! weighted-median k-d partition, or the adaptive quadtree — the index
//! families the paper's Section 8 proposes to explore.

use crate::geom::{BBox, Point};

/// A hierarchical partition of a square domain.
///
/// Invariants implementations must uphold (property-tested per impl):
/// * the children of a node tile its box exactly (no overlap, no gaps);
/// * `mass` of a node equals the sum of its children's masses;
/// * every node's `level` is its parent's plus one, root at level 0;
/// * depth never exceeds [`SpacePartition::max_depth`].
pub trait SpacePartition {
    /// Root node id (level 0, covering the whole domain).
    fn root(&self) -> usize;

    /// Children of a node (empty slice for leaves).
    fn children(&self, id: usize) -> &[usize];

    /// Spatial extent of a node.
    fn bbox(&self, id: usize) -> BBox;

    /// Prior mass of a node (fraction of the training points inside).
    fn mass(&self, id: usize) -> f64;

    /// Depth of a node below the root.
    fn level(&self, id: usize) -> u32;

    /// Maximum leaf depth in this partition.
    fn max_depth(&self) -> u32;

    /// True when the node has no children.
    fn is_leaf(&self, id: usize) -> bool {
        self.children(id).is_empty()
    }

    /// The child of `id` whose box contains `p`, if any.
    fn child_containing(&self, id: usize, p: Point) -> Option<usize> {
        self.children(id).iter().copied().find(|&c| {
            let b = self.bbox(c);
            b.contains(p) || on_global_upper_edge(self.bbox(self.root()), b, p)
        })
    }

    /// Descend from the root to the leaf containing `p` (must be in the
    /// domain).
    fn leaf_containing(&self, p: Point) -> Option<usize> {
        let mut node = self.root();
        while !self.is_leaf(node) {
            node = self.child_containing(node, p)?;
        }
        Some(node)
    }
}

/// Half-open boxes miss points sitting exactly on the domain's top/right
/// edge; accept them for boxes that touch that global edge.
fn on_global_upper_edge(domain: BBox, b: BBox, p: Point) -> bool {
    let on_right = p.x == b.max.x && b.max.x == domain.max.x;
    let on_top = p.y == b.max.y && b.max.y == domain.max.y;
    let x_in = p.x >= b.min.x && (p.x < b.max.x || on_right);
    let y_in = p.y >= b.min.y && (p.y < b.max.y || on_top);
    (on_right || on_top) && x_in && y_in
}

impl SpacePartition for crate::kdpart::KdPartition {
    fn root(&self) -> usize {
        KdPartition::root(self)
    }

    fn children(&self, id: usize) -> &[usize] {
        &self.node(id).children
    }

    fn bbox(&self, id: usize) -> BBox {
        self.node(id).bbox
    }

    fn mass(&self, id: usize) -> f64 {
        self.node(id).mass
    }

    fn level(&self, id: usize) -> u32 {
        self.node(id).level
    }

    fn max_depth(&self) -> u32 {
        self.height()
    }
}

use crate::kdpart::KdPartition;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kdpartition_implements_the_contract() {
        let pts: Vec<Point> = (0..500)
            .map(|i| Point::new((i % 23) as f64 * 0.8, (i % 19) as f64))
            .collect();
        let part = KdPartition::build(BBox::square(20.0), &pts, 4, 2);
        let root = SpacePartition::root(&part);
        assert_eq!(part.level(root), 0);
        assert_eq!(part.max_depth(), 2);
        // Tiling + mass conservation per node.
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            let kids = SpacePartition::children(&part, n);
            if kids.is_empty() {
                assert_eq!(part.level(n), 2);
                continue;
            }
            let area: f64 = kids
                .iter()
                .map(|&c| part.bbox(c).width() * part.bbox(c).height())
                .sum();
            let pb = part.bbox(n);
            assert!((area - pb.width() * pb.height()).abs() < 1e-6);
            let mass: f64 = kids.iter().map(|&c| SpacePartition::mass(&part, c)).sum();
            assert!((mass - SpacePartition::mass(&part, n)).abs() < 1e-9);
            stack.extend_from_slice(kids);
        }
    }

    #[test]
    fn leaf_containing_descends_fully() {
        let pts: Vec<Point> = (0..200)
            .map(|i| Point::new((i % 17) as f64, (i % 13) as f64))
            .collect();
        let part = KdPartition::build(BBox::square(20.0), &pts, 4, 3);
        for p in [
            Point::new(0.0, 0.0),
            Point::new(10.5, 3.3),
            Point::new(19.999, 19.999),
        ] {
            let leaf = part.leaf_containing(p).expect("point must land in a leaf");
            assert!(part.is_leaf(leaf));
            assert!(part.bbox(leaf).contains_closed(p));
        }
    }

    #[test]
    fn global_upper_edge_points_are_owned() {
        let part = KdPartition::build(BBox::square(8.0), &[], 4, 2);
        for p in [
            Point::new(8.0, 4.0),
            Point::new(4.0, 8.0),
            Point::new(8.0, 8.0),
        ] {
            assert!(part.leaf_containing(p).is_some(), "{p:?} unowned");
        }
    }
}
