//! Planar geometry on a local km-plane.
//!
//! All mechanisms work in a flat 2-D coordinate system measured in
//! kilometres. Real check-ins arrive as WGS-84 lat/lon; at city scale
//! (≤ tens of km) an equirectangular projection around a reference latitude
//! is accurate to well under 0.1% and keeps every distance Euclidean, which
//! is the distinguishability metric `d(·,·)` the paper uses.

/// A point on the local km-plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Easting, km.
    pub x: f64,
    /// Northing, km.
    pub y: f64,
}

impl Point {
    /// Construct a point from km coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`, in km.
    pub fn dist(&self, other: Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Squared Euclidean distance to `other`, in km².
    pub fn dist2(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Component-wise translation.
    pub fn offset(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

/// An axis-aligned bounding box `[min_x, max_x) × [min_y, max_y)`.
///
/// Half-open on the upper edges so grid cells tile a domain without overlap;
/// [`BBox::contains`] treats the global upper edge as inclusive when testing
/// against the full domain is desired via [`BBox::contains_closed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl BBox {
    /// Construct a box; panics if the corners are inverted or degenerate.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            max.x > min.x && max.y > min.y,
            "degenerate bbox: {min:?}..{max:?}"
        );
        Self { min, max }
    }

    /// The square `[0, side) × [0, side)`.
    pub fn square(side: f64) -> Self {
        assert!(side > 0.0);
        Self::new(Point::new(0.0, 0.0), Point::new(side, side))
    }

    /// Width (km).
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (km).
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Side length, asserting the box is (numerically) square.
    pub fn side(&self) -> f64 {
        let w = self.width();
        let h = self.height();
        assert!(
            (w - h).abs() <= 1e-9 * w.max(h),
            "side() on a non-square bbox {w}x{h}"
        );
        w
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new(
            0.5 * (self.min.x + self.max.x),
            0.5 * (self.min.y + self.max.y),
        )
    }

    /// Half-open membership test.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x < self.max.x && p.y >= self.min.y && p.y < self.max.y
    }

    /// Closed membership test (both upper edges inclusive).
    pub fn contains_closed(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamp a point into the closed box.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Grow a rectangle into the smallest enclosing square (paper footnote 3:
    /// non-square domains are scaled/equalized before running the algorithm).
    pub fn enclosing_square(&self) -> BBox {
        let side = self.width().max(self.height());
        BBox::new(self.min, Point::new(self.min.x + side, self.min.y + side))
    }
}

/// Mean Earth radius in km (spherical approximation).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Equirectangular projection of WGS-84 coordinates onto a km-plane anchored
/// at `(lat0, lon0)` (which maps to the origin).
#[derive(Debug, Clone, Copy)]
pub struct Projection {
    lat0: f64,
    lon0: f64,
    cos_lat0: f64,
}

impl Projection {
    /// Anchor the plane at the given reference coordinate (degrees).
    pub fn new(lat0_deg: f64, lon0_deg: f64) -> Self {
        assert!((-90.0..=90.0).contains(&lat0_deg), "latitude out of range");
        Self {
            lat0: lat0_deg.to_radians(),
            lon0: lon0_deg.to_radians(),
            cos_lat0: lat0_deg.to_radians().cos(),
        }
    }

    /// Project (lat, lon) in degrees to km-plane coordinates.
    pub fn project(&self, lat_deg: f64, lon_deg: f64) -> Point {
        let lat = lat_deg.to_radians();
        let lon = lon_deg.to_radians();
        Point::new(
            EARTH_RADIUS_KM * (lon - self.lon0) * self.cos_lat0,
            EARTH_RADIUS_KM * (lat - self.lat0),
        )
    }

    /// Inverse projection back to (lat, lon) degrees.
    pub fn unproject(&self, p: Point) -> (f64, f64) {
        let lat = self.lat0 + p.y / EARTH_RADIUS_KM;
        let lon = self.lon0 + p.x / (EARTH_RADIUS_KM * self.cos_lat0);
        (lat.to_degrees(), lon.to_degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.dist2(b), 25.0);
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn bbox_membership_half_open() {
        let b = BBox::square(10.0);
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(9.999, 9.999)));
        assert!(!b.contains(Point::new(10.0, 5.0)));
        assert!(b.contains_closed(Point::new(10.0, 10.0)));
        assert!(!b.contains_closed(Point::new(10.0001, 10.0)));
    }

    #[test]
    fn bbox_center_and_side() {
        let b = BBox::new(Point::new(2.0, 4.0), Point::new(6.0, 8.0));
        assert_eq!(b.center(), Point::new(4.0, 6.0));
        assert_eq!(b.side(), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-square")]
    fn side_panics_on_rectangle() {
        BBox::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0)).side();
    }

    #[test]
    fn clamp_pulls_points_inside() {
        let b = BBox::square(5.0);
        let p = b.clamp(Point::new(-3.0, 7.0));
        assert_eq!(p, Point::new(0.0, 5.0));
        assert!(b.contains_closed(p));
    }

    #[test]
    fn enclosing_square_covers_rectangle() {
        let r = BBox::new(Point::new(1.0, 1.0), Point::new(5.0, 3.0));
        let s = r.enclosing_square();
        assert_eq!(s.side(), 4.0);
        assert!(s.contains_closed(r.max));
    }

    #[test]
    fn projection_roundtrip() {
        // Austin, TX reference (paper's Gowalla region).
        let proj = Projection::new(30.2825, -97.7658);
        for (lat, lon) in [(30.1927, -97.8698), (30.3723, -97.6618), (30.28, -97.75)] {
            let p = proj.project(lat, lon);
            let (lat2, lon2) = proj.unproject(p);
            assert!((lat - lat2).abs() < 1e-12);
            assert!((lon - lon2).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_scale_matches_paper_region() {
        // The paper's Austin region (lat 30.1927..30.3723, lon -97.8698..
        // -97.6618) is described as 20x20 km; the projection must agree to
        // within ~2%.
        let proj = Projection::new(30.2825, -97.7658);
        let sw = proj.project(30.1927, -97.8698);
        let ne = proj.project(30.3723, -97.6618);
        let w = ne.x - sw.x;
        let h = ne.y - sw.y;
        assert!((w - 20.0).abs() < 0.5, "width {w}");
        assert!((h - 20.0).abs() < 0.5, "height {h}");
    }
}
