//! Adaptive quadtree partition.
//!
//! Splits a square region into quadrants *only where the data warrants it*:
//! a node is subdivided while it holds more than `max_points_per_leaf`
//! training points and is above `max_depth`. Dense downtown areas get deep,
//! fine leaves; empty suburbs stay coarse — a different answer than the
//! k-d partition to the same Section-8 question ("indexes that adjust to
//! skewed priors"), with the advantage that leaf boxes remain square.

use crate::geom::{BBox, Point};
use crate::partition::SpacePartition;

#[derive(Debug, Clone)]
struct QNode {
    bbox: BBox,
    children: Vec<usize>, // 0 or 4
    mass: f64,
    level: u32,
}

/// A variable-depth quadtree over a square domain.
#[derive(Debug, Clone)]
pub struct AdaptiveQuadtree {
    nodes: Vec<QNode>,
    root: usize,
    max_depth: u32,
}

impl AdaptiveQuadtree {
    /// Build from training points.
    ///
    /// A node splits while it contains more than `max_points_per_leaf`
    /// points (strictly) and its depth is below `max_depth`.
    ///
    /// # Panics
    /// Panics if `max_depth == 0` or `max_points_per_leaf == 0`.
    pub fn build(
        domain: BBox,
        points: &[Point],
        max_points_per_leaf: usize,
        max_depth: u32,
    ) -> Self {
        assert!(max_depth >= 1, "max_depth must be >= 1");
        assert!(max_points_per_leaf >= 1, "max_points_per_leaf must be >= 1");
        domain.side(); // assert squareness
        let mut inside: Vec<Point> = points
            .iter()
            .copied()
            .filter(|p| domain.contains(*p))
            .collect();
        let total = inside.len().max(1) as f64;
        let mut nodes = Vec::new();
        let root = Self::build_rec(
            domain,
            &mut inside,
            0,
            max_points_per_leaf,
            max_depth,
            total,
            &mut nodes,
        );
        Self {
            nodes,
            root,
            max_depth,
        }
    }

    fn build_rec(
        bbox: BBox,
        pts: &mut [Point],
        level: u32,
        cap: usize,
        max_depth: u32,
        total: f64,
        nodes: &mut Vec<QNode>,
    ) -> usize {
        let mass = pts.len() as f64 / total;
        if level == max_depth || pts.len() <= cap {
            nodes.push(QNode {
                bbox,
                children: Vec::new(),
                mass,
                level,
            });
            return nodes.len() - 1;
        }
        let c = bbox.center();
        // Partition points into quadrants: SW, SE, NW, NE (in-place,
        // stable enough for our purposes).
        let mid_y = partition_by(pts, |p| p.y < c.y);
        let (south, north) = pts.split_at_mut(mid_y);
        let mid_sw = partition_by(south, |p| p.x < c.x);
        let mid_nw = partition_by(north, |p| p.x < c.x);
        let (sw, se) = south.split_at_mut(mid_sw);
        let (nw, ne) = north.split_at_mut(mid_nw);
        let boxes = [
            BBox::new(bbox.min, c),
            BBox::new(Point::new(c.x, bbox.min.y), Point::new(bbox.max.x, c.y)),
            BBox::new(Point::new(bbox.min.x, c.y), Point::new(c.x, bbox.max.y)),
            BBox::new(c, bbox.max),
        ];
        let quads: [&mut [Point]; 4] = [sw, se, nw, ne];
        let mut children = Vec::with_capacity(4);
        for (b, q) in boxes.into_iter().zip(quads) {
            children.push(Self::build_rec(
                b,
                q,
                level + 1,
                cap,
                max_depth,
                total,
                nodes,
            ));
        }
        nodes.push(QNode {
            bbox,
            children,
            mass,
            level,
        });
        nodes.len() - 1
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Never empty (there is always a root).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All leaf ids.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].children.is_empty())
            .collect()
    }

    /// The deepest leaf level actually present.
    pub fn deepest_leaf(&self) -> u32 {
        self.leaves()
            .iter()
            .map(|&l| self.nodes[l].level)
            .max()
            .unwrap_or(0)
    }
}

/// Stable-ish in-place partition; returns the boundary index.
fn partition_by(pts: &mut [Point], pred: impl Fn(&Point) -> bool) -> usize {
    let mut i = 0;
    let mut j = pts.len();
    while i < j {
        if pred(&pts[i]) {
            i += 1;
        } else {
            j -= 1;
            pts.swap(i, j);
        }
    }
    i
}

impl SpacePartition for AdaptiveQuadtree {
    fn root(&self) -> usize {
        self.root
    }

    fn children(&self, id: usize) -> &[usize] {
        &self.nodes[id].children
    }

    fn bbox(&self, id: usize) -> BBox {
        self.nodes[id].bbox
    }

    fn mass(&self, id: usize) -> f64 {
        self.nodes[id].mass
    }

    fn level(&self, id: usize) -> u32 {
        self.nodes[id].level
    }

    fn max_depth(&self) -> u32 {
        self.max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoind_rng::{Rng, SeededRng};

    fn clustered(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = SeededRng::from_seed(seed);
        (0..n)
            .map(|i| {
                if i % 10 == 0 {
                    Point::new(rng.gen_range(0.0..16.0), rng.gen_range(0.0..16.0))
                } else {
                    Point::new(rng.gen_range(2.0..4.0), rng.gen_range(2.0..4.0))
                }
            })
            .collect()
    }

    #[test]
    fn splits_only_dense_regions() {
        let pts = clustered(2_000, 1);
        let qt = AdaptiveQuadtree::build(BBox::square(16.0), &pts, 50, 5);
        // The cluster quadrant must reach deeper than the sparse corners.
        let leaves = qt.leaves();
        let deepest_cluster = leaves
            .iter()
            .filter(|&&l| {
                qt.bbox(l).contains(Point::new(3.0, 3.0))
                    || qt.bbox(l).min.dist(Point::new(2.0, 2.0)) < 3.0
            })
            .map(|&l| qt.level(l))
            .max()
            .unwrap();
        let far_leaf = qt.leaf_containing(Point::new(15.0, 15.0)).unwrap();
        assert!(
            deepest_cluster > qt.level(far_leaf),
            "cluster depth {deepest_cluster} vs sparse depth {}",
            qt.level(far_leaf)
        );
        assert!(qt.deepest_leaf() <= 5);
    }

    #[test]
    fn children_tile_and_masses_conserve() {
        let pts = clustered(1_000, 2);
        let qt = AdaptiveQuadtree::build(BBox::square(16.0), &pts, 30, 4);
        for id in 0..qt.len() {
            let kids = qt.children(id);
            if kids.is_empty() {
                continue;
            }
            assert_eq!(kids.len(), 4);
            let area: f64 = kids
                .iter()
                .map(|&c| {
                    let b = qt.bbox(c);
                    b.width() * b.height()
                })
                .sum();
            let pb = qt.bbox(id);
            assert!((area - pb.width() * pb.height()).abs() < 1e-9);
            let mass: f64 = kids.iter().map(|&c| qt.mass(c)).sum();
            assert!((mass - qt.mass(id)).abs() < 1e-9);
        }
    }

    #[test]
    fn every_point_reaches_a_leaf() {
        let pts = clustered(500, 3);
        let qt = AdaptiveQuadtree::build(BBox::square(16.0), &pts, 20, 4);
        let mut rng = SeededRng::from_seed(4);
        for _ in 0..500 {
            let p = Point::new(rng.gen_range(0.0..16.0), rng.gen_range(0.0..16.0));
            let leaf = qt.leaf_containing(p).expect("descent must succeed");
            assert!(qt.bbox(leaf).contains(p));
        }
    }

    #[test]
    fn no_data_yields_single_leaf() {
        let qt = AdaptiveQuadtree::build(BBox::square(8.0), &[], 10, 3);
        assert_eq!(qt.len(), 1);
        assert!(qt.is_leaf(qt.root()));
        assert_eq!(qt.deepest_leaf(), 0);
    }

    #[test]
    fn cap_of_one_fully_splits_duplicates_region() {
        // Points at the same spot cannot be separated: depth caps at
        // max_depth rather than recursing forever.
        let pts = vec![Point::new(1.0, 1.0); 50];
        let qt = AdaptiveQuadtree::build(BBox::square(8.0), &pts, 1, 4);
        assert_eq!(qt.deepest_leaf(), 4);
    }
}
