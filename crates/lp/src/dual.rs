//! Dualization: solve row-heavy LPs through their column-heavy duals.
//!
//! The optimal GeoInd mechanism over `n` locations has `n²` variables and
//! `Θ(n³)` rows. A revised simplex carries an `m×m` basis for `m = #rows`,
//! so the primal is hopeless beyond tiny `n` — but the dual has only `n²`
//! rows. Strong duality recovers the primal optimum exactly: the optimal
//! primal values are the row duals of the dual problem.
//!
//! A bonus specific to OPT: its objective coefficients `Π(x)·d_Q(x,z)` are
//! non-negative, so the dual's slack basis is immediately feasible and the
//! simplex never needs a phase 1.

use crate::model::{Model, Op, Sense, Solution, SolveVia, VarDomain};
use crate::simplex::{Basis, SimplexOptions};
use crate::LpError;

/// The dual model plus the bookkeeping needed to map solutions back.
#[derive(Debug, Clone)]
pub struct Dualized {
    /// The dual LP (always `Maximize` for a `Minimize` primal).
    pub model: Model,
    /// `+1` where the dual variable is the textbook `yᵢ`, `−1` where it was
    /// negated to fit the non-negative domain (primal `≤` rows).
    pub row_var_signs: Vec<f64>,
}

/// Build the dual of a **minimization** model.
///
/// Textbook correspondence (primal `min c·x`):
///
/// | primal row     | dual variable | | primal variable | dual row        |
/// |----------------|---------------|-|-----------------|-----------------|
/// | `a·x ≥ b`      | `y ≥ 0`       | | `x ≥ 0`         | `aᵀy ≤ c`       |
/// | `a·x ≤ b`      | `y ≤ 0`       | | `x` free        | `aᵀy = c`       |
/// | `a·x = b`      | `y` free      | |                 |                 |
///
/// `y ≤ 0` variables are stored negated (so every non-free dual variable is
/// non-negative); [`Dualized::row_var_signs`] records the flip.
///
/// # Panics
/// Panics if the model is a maximization (callers negate first).
pub fn dualize_min(primal: &Model) -> Dualized {
    assert_eq!(
        primal.sense(),
        Sense::Minimize,
        "dualize_min expects a minimization"
    );
    let mut dual = Model::new(Sense::Maximize);
    let mut row_var_signs = Vec::with_capacity(primal.num_rows());
    // One dual variable per primal row; objective coefficient = rhs.
    for row in &primal.rows {
        let sign = match row.op {
            Op::Ge => 1.0,
            Op::Le => -1.0,
            Op::Eq => 1.0,
        };
        row_var_signs.push(sign);
        match row.op {
            Op::Eq => dual.add_var_free(row.rhs),
            _ => dual.add_var(sign * row.rhs),
        };
    }
    // One dual row per primal variable: Σ_i a_ij·y_i (≤ or =) c_j.
    let mut per_var: Vec<Vec<(usize, f64)>> = vec![Vec::new(); primal.num_vars()];
    for (i, row) in primal.rows.iter().enumerate() {
        for &(v, c) in &row.entries {
            per_var[v].push((i, c * row_var_signs[i]));
        }
    }
    for (j, entries) in per_var.iter().enumerate() {
        let op = match primal.domains[j] {
            VarDomain::NonNeg => Op::Le,
            VarDomain::Free => Op::Eq,
        };
        dual.add_row(entries, op, primal.obj[j]);
    }
    Dualized {
        model: dual,
        row_var_signs,
    }
}

/// Remap a [`Basis`] exported from a [`SolveVia::Dual`] solve of `before`
/// so it can warm-start the dual path again after `added` new `Le` rows
/// were appended to the (primal) model.
///
/// On the dual path a primal row is a dual *variable*, so appending primal
/// `Le` rows inserts `added` non-negative dual variables — one
/// standard-form column each — immediately before the dual's slack block.
/// The dual's rows (one per primal variable) and right-hand side (the
/// primal objective) are untouched, which is why the old basis remains
/// primal-feasible for the grown dual LP and a
/// [`crate::simplex::WarmMode::PrimalContinue`] restart is sound: only the
/// column indices at or past the insertion point need shifting.
///
/// `before` must be the model *before* the rows were appended; free dual
/// variables (primal `Eq` rows) occupy two standard columns, everything
/// else one.
pub fn remap_dual_basis_after_le_append(before: &Model, basis: &Basis, added: usize) -> Basis {
    let insert_at: usize = before
        .rows
        .iter()
        .map(|r| if r.op == Op::Eq { 2 } else { 1 })
        .sum();
    basis.with_columns_inserted(insert_at, added)
}

/// Solve `primal` by dualizing, running the simplex on the dual, and mapping
/// back: primal values ← dual row-duals, primal duals ← dual variable
/// values.
pub fn solve_via_dual(primal: &Model, opts: SimplexOptions) -> Result<Solution, LpError> {
    // Normalize to minimization.
    if primal.sense() == Sense::Maximize {
        let mut min_model = primal.clone();
        min_model.sense = Sense::Minimize;
        for c in &mut min_model.obj {
            *c = -*c;
        }
        let sol = solve_via_dual(&min_model, opts)?;
        return Ok(Solution {
            objective: -sol.objective,
            values: sol.values,
            duals: sol.duals.iter().map(|&d| -d).collect(),
            iterations: sol.iterations,
            residual: sol.residual,
            dual_residual: sol.dual_residual,
            basis: sol.basis,
        });
    }
    let dualized = dualize_min(primal);
    let dual_sol = match dualized.model.solve_with(SolveVia::Primal, opts) {
        Ok(s) => s,
        // An unbounded dual certifies primal infeasibility; an infeasible
        // dual means the primal is unbounded or infeasible — for the LPs in
        // this workspace (bounded feasible) we report the textbook case.
        Err(LpError::Unbounded) => return Err(LpError::Infeasible),
        Err(LpError::Infeasible) => return Err(LpError::Unbounded),
        Err(e) => return Err(e),
    };
    // Primal variable values = duals of the dual's rows (one row per
    // primal var, in order).
    let values = dual_sol.duals.clone();
    // Primal row duals = dual variable values, unflipped.
    let duals: Vec<f64> = dual_sol
        .values
        .iter()
        .zip(&dualized.row_var_signs)
        .map(|(&v, &s)| v * s)
        .collect();
    // The recovered primal values are the dual solve's row duals, so their
    // feasibility is governed by the dual solve's *dual* residual (and vice
    // versa): swap the two so the caller reads them in primal terms.
    // The basis travels in the dual's standard-form space: a sibling model
    // dualized the same way produces the same shape, so it round-trips.
    Ok(Solution {
        objective: dual_sol.objective,
        values,
        duals,
        iterations: dual_sol.iterations,
        residual: dual_sol.dual_residual,
        dual_residual: dual_sol.residual,
        basis: dual_sol.basis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Op, Sense, SolveVia};

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        assert!((a - b).abs() < tol, "{what}: {a} vs {b}");
    }

    #[test]
    fn dual_path_matches_primal_path_on_max() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(3.0);
        let y = m.add_var(5.0);
        m.add_row(&[(x, 1.0)], Op::Le, 4.0);
        m.add_row(&[(y, 2.0)], Op::Le, 12.0);
        m.add_row(&[(x, 3.0), (y, 2.0)], Op::Le, 18.0);
        let p = m.solve(SolveVia::Primal).unwrap();
        let d = m.solve(SolveVia::Dual).unwrap();
        assert_close(p.objective, d.objective, 1e-8, "objective");
        for j in 0..2 {
            assert_close(p.values[j], d.values[j], 1e-8, "value");
        }
        for i in 0..3 {
            assert_close(p.duals[i], d.duals[i], 1e-8, "dual");
        }
    }

    #[test]
    fn dual_path_matches_primal_path_on_min_with_eq() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(2.0);
        let y = m.add_var(3.0);
        let z = m.add_var(1.0);
        m.add_row(&[(x, 1.0), (y, 1.0), (z, 1.0)], Op::Eq, 10.0);
        m.add_row(&[(x, 1.0), (y, -1.0)], Op::Ge, 2.0);
        m.add_row(&[(z, 1.0)], Op::Le, 4.0);
        let p = m.solve(SolveVia::Primal).unwrap();
        let d = m.solve(SolveVia::Dual).unwrap();
        assert_close(p.objective, d.objective, 1e-8, "objective");
        for j in 0..3 {
            assert_close(p.values[j], d.values[j], 1e-8, "value");
        }
    }

    #[test]
    fn opt_shaped_lp_slack_start() {
        // A miniature of the OPT structure: minimize sum pi_x d(x,z) k_xz
        // with row-stochastic equalities and difference constraints.
        // 2 locations at distance 1, eps = 1, uniform prior.
        let e = std::f64::consts::E;
        let mut m = Model::new(Sense::Minimize);
        // Vars k(0,0), k(0,1), k(1,0), k(1,1).
        let k00 = m.add_var(0.0);
        let k01 = m.add_var(0.5);
        let k10 = m.add_var(0.5);
        let k11 = m.add_var(0.0);
        m.add_row(&[(k00, 1.0), (k01, 1.0)], Op::Eq, 1.0);
        m.add_row(&[(k10, 1.0), (k11, 1.0)], Op::Eq, 1.0);
        // GeoInd rows: k(x,z) - e^{eps d} k(x',z) <= 0 for all x != x', z.
        m.add_row(&[(k00, 1.0), (k10, -e)], Op::Le, 0.0);
        m.add_row(&[(k10, 1.0), (k00, -e)], Op::Le, 0.0);
        m.add_row(&[(k01, 1.0), (k11, -e)], Op::Le, 0.0);
        m.add_row(&[(k11, 1.0), (k01, -e)], Op::Le, 0.0);
        let p = m.solve(SolveVia::Primal).unwrap();
        let d = m.solve(SolveVia::Dual).unwrap();
        assert_close(p.objective, d.objective, 1e-9, "objective");
        // Known optimum: truthful reporting pushed to the GeoInd limit:
        // k(0,1) = k(1,0) = 1/(1+e), objective = 1/(1+e).
        let expect = 1.0 / (1.0 + e);
        assert_close(d.objective, expect, 1e-9, "closed form");
        assert_close(d.values[k01], expect, 1e-8, "k01");
        assert_close(d.values[k10], expect, 1e-8, "k10");
        assert_close(d.values[k00], 1.0 - expect, 1e-8, "k00");
        assert_close(d.values[k11], 1.0 - expect, 1e-8, "k11");
    }

    #[test]
    fn dual_basis_survives_le_row_append() {
        use crate::simplex::{SimplexOptions, WarmMode};
        // min 2x + y s.t. x + y = 2  =>  (0, 2), objective 2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(2.0);
        let y = m.add_var(1.0);
        m.add_row(&[(x, 1.0), (y, 1.0)], Op::Eq, 2.0);
        let first = m.solve(SolveVia::Dual).unwrap();
        assert!((first.objective - 2.0).abs() < 1e-9);

        // Append a violated cut y <= 1.5; remap the exit basis past the new
        // dual column and continue in primal mode.
        let before = m.clone();
        m.add_row(&[(y, 1.0)], Op::Le, 1.5);
        let warm_basis = remap_dual_basis_after_le_append(&before, &first.basis, 1);
        let warm = m
            .solve_with(
                SolveVia::Dual,
                SimplexOptions {
                    start_basis: Some(warm_basis),
                    warm_mode: WarmMode::PrimalContinue,
                    ..SimplexOptions::default()
                },
            )
            .unwrap();
        let cold = m.solve(SolveVia::Dual).unwrap();
        assert_close(warm.objective, 2.5, 1e-9, "objective after cut");
        assert_close(warm.values[x], 0.5, 1e-8, "x");
        assert_close(warm.values[y], 1.5, 1e-8, "y");
        assert_close(warm.objective, cold.objective, 1e-9, "warm vs cold");
    }

    #[test]
    fn infeasible_primal_detected_through_dual() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(1.0);
        m.add_row(&[(x, 1.0)], Op::Ge, 5.0);
        m.add_row(&[(x, 1.0)], Op::Le, 2.0);
        assert_eq!(m.solve(SolveVia::Dual).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn auto_picks_dual_for_row_heavy() {
        // 1 variable, 40 rows: Auto must still produce the right answer.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(1.0);
        for i in 0..40 {
            m.add_row(&[(x, 1.0)], Op::Ge, i as f64 / 10.0);
        }
        let s = m.solve(SolveVia::Auto).unwrap();
        assert_close(s.values[x], 3.9, 1e-9, "x");
    }
}
