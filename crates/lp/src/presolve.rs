//! Lightweight LP presolve.
//!
//! Reductions applied before the simplex sees the model:
//!
//! 1. **Empty rows** — `0 op rhs` is either vacuous (drop) or a proof of
//!    infeasibility (fail fast).
//! 2. **Empty columns** — a variable in no row is set by its cost sign
//!    alone: 0 for a non-negative variable with `c ≥ 0` under minimization,
//!    otherwise the model is unbounded.
//! 3. **Singleton equality rows** — `a·x = b` fixes `x = b/a`; the value is
//!    substituted into every other row and the variable removed (with a
//!    domain check for non-negative variables).
//!
//! The reductions iterate to a fixpoint (fixing a variable can empty
//! another row). [`presolve_and_solve`] wraps the whole flow and
//! reconstructs the full-length solution vector; duals are returned in the
//! *reduced* row space (None for rows the presolve removed), since most
//! callers — including the OPT mechanism — only consume primal values.

use crate::model::{Model, Op, RowTuple, Sense, Solution, SolveVia, VarDomain};
use crate::simplex::SimplexOptions;
use crate::LpError;

/// Outcome of presolving: a smaller model plus reconstruction data, or a
/// complete answer when the reductions solved (or refuted) the model.
#[derive(Debug)]
pub enum Presolved {
    /// A reduced model remains to be solved.
    Reduced(Box<ReducedLp>),
    /// All variables were fixed by the reductions.
    Solved {
        /// Values of every original variable.
        values: Vec<f64>,
        /// Objective in the original sense.
        objective: f64,
    },
}

/// The reduced model and the bookkeeping to undo the reductions.
#[derive(Debug)]
pub struct ReducedLp {
    /// The smaller model.
    pub model: Model,
    /// For each original variable: `Ok(idx)` = column in the reduced model,
    /// `Err(value)` = fixed by presolve.
    pub var_map: Vec<Result<usize, f64>>,
    /// For each original row: its index in the reduced model, if kept.
    pub row_map: Vec<Option<usize>>,
    /// Objective contribution of the fixed variables (original sense).
    pub fixed_objective: f64,
}

const TOL: f64 = 1e-9;

/// Apply the reductions to a model.
///
/// # Errors
/// [`LpError::Infeasible`] / [`LpError::Unbounded`] when a reduction proves
/// it outright.
pub fn presolve(model: &Model) -> Result<Presolved, LpError> {
    let n = model.num_vars();
    let mut fixed: Vec<Option<f64>> = vec![None; n];
    let mut row_alive: Vec<bool> = vec![true; model.num_rows()];
    // Working copy of rows as (entries, op, rhs); rhs absorbs fixed vars.
    let mut rows: Vec<RowTuple> = model.rows_for_presolve();
    let min_sign = if model.sense() == Sense::Maximize {
        -1.0
    } else {
        1.0
    };

    // Variables appearing in no row at all.
    let mut appears = vec![false; n];
    for (entries, _, _) in &rows {
        for &(v, c) in entries {
            if c != 0.0 {
                appears[v] = true;
            }
        }
    }
    for v in 0..n {
        if !appears[v] {
            let c_min = min_sign * model.objective_of(v);
            match model.domain_of(v) {
                VarDomain::NonNeg => {
                    if c_min < -TOL {
                        return Err(LpError::Unbounded);
                    }
                    fixed[v] = Some(0.0);
                }
                VarDomain::Free => {
                    if c_min.abs() > TOL {
                        return Err(LpError::Unbounded);
                    }
                    fixed[v] = Some(0.0);
                }
            }
        }
    }

    // Fixpoint loop: singleton equality rows and emptied rows.
    loop {
        let mut changed = false;
        for (ri, alive) in row_alive.iter_mut().enumerate() {
            if !*alive {
                continue;
            }
            let (entries, op, rhs) = &mut rows[ri];
            // Drop entries of fixed variables into the rhs.
            entries.retain(|&(v, c)| {
                if let Some(val) = fixed[v] {
                    *rhs -= c * val;
                    false
                } else {
                    c != 0.0
                }
            });
            if entries.is_empty() {
                let feasible = match op {
                    Op::Le => *rhs >= -TOL,
                    Op::Ge => *rhs <= TOL,
                    Op::Eq => rhs.abs() <= TOL,
                };
                if !feasible {
                    return Err(LpError::Infeasible);
                }
                *alive = false;
                changed = true;
                continue;
            }
            if *op == Op::Eq && entries.len() == 1 {
                let (v, c) = entries[0];
                let value = *rhs / c;
                if model.domain_of(v) == VarDomain::NonNeg && value < -TOL {
                    return Err(LpError::Infeasible);
                }
                fixed[v] = Some(value);
                *alive = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Assemble the reduced model.
    let mut var_map: Vec<Result<usize, f64>> = Vec::with_capacity(n);
    let mut reduced = Model::new(model.sense());
    let mut fixed_objective = 0.0;
    for v in 0..n {
        match fixed[v] {
            Some(val) => {
                fixed_objective += model.objective_of(v) * val;
                var_map.push(Err(val));
            }
            None => {
                let idx = match model.domain_of(v) {
                    VarDomain::NonNeg => reduced.add_var(model.objective_of(v)),
                    VarDomain::Free => reduced.add_var_free(model.objective_of(v)),
                };
                var_map.push(Ok(idx));
            }
        }
    }
    if reduced.num_vars() == 0 {
        return Ok(Presolved::Solved {
            values: fixed.into_iter().map(|f| f.unwrap_or(0.0)).collect(),
            objective: fixed_objective,
        });
    }
    let mut row_map: Vec<Option<usize>> = vec![None; model.num_rows()];
    for (ri, alive) in row_alive.iter().enumerate() {
        if !*alive {
            continue;
        }
        let (entries, op, rhs) = &rows[ri];
        let mapped: Vec<(usize, f64)> = entries
            .iter()
            .map(|&(v, c)| (var_map[v].expect("unfixed var maps to a column"), c))
            .collect();
        row_map[ri] = Some(reduced.num_rows());
        reduced.add_row(&mapped, *op, *rhs);
    }
    Ok(Presolved::Reduced(Box::new(ReducedLp {
        model: reduced,
        var_map,
        row_map,
        fixed_objective,
    })))
}

/// Presolve, solve the reduction, and reconstruct the original solution.
/// Duals are reported per original row (`0.0` for presolved-away rows, which
/// are non-binding or absorbed).
///
/// # Errors
/// Any [`LpError`] from the reductions or the solver.
pub fn presolve_and_solve(
    model: &Model,
    via: SolveVia,
    opts: SimplexOptions,
) -> Result<Solution, LpError> {
    match presolve(model)? {
        Presolved::Solved { values, objective } => Ok(Solution {
            objective,
            values,
            duals: vec![0.0; model.num_rows()],
            iterations: 0,
            residual: 0.0,
            dual_residual: 0.0,
            basis: crate::simplex::Basis::empty(),
        }),
        Presolved::Reduced(red) => {
            let inner = red.model.solve_with(via, opts)?;
            let values: Vec<f64> = red
                .var_map
                .iter()
                .map(|m| match m {
                    Ok(idx) => inner.values[*idx],
                    Err(v) => *v,
                })
                .collect();
            let mut duals = vec![0.0; model.num_rows()];
            for (orig, mapped) in red.row_map.iter().enumerate() {
                if let Some(mi) = mapped {
                    duals[orig] = inner.duals[*mi];
                }
            }
            // The basis lives in the *reduced* model's standard-form space;
            // structurally identical models presolve identically, so it
            // still round-trips between siblings.
            Ok(Solution {
                objective: inner.objective + red.fixed_objective,
                values,
                duals,
                iterations: inner.iterations,
                residual: inner.residual,
                dual_residual: inner.dual_residual,
                basis: inner.basis,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Op, Sense, SolveVia};

    #[test]
    fn empty_rows_dropped_and_checked() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(1.0);
        m.add_row(&[], Op::Le, 5.0); // vacuous
        m.add_row(&[(x, 1.0)], Op::Ge, 2.0);
        let sol = presolve_and_solve(&m, SolveVia::Primal, SimplexOptions::default()).unwrap();
        assert!((sol.values[x] - 2.0).abs() < 1e-9);

        let mut bad = Model::new(Sense::Minimize);
        let _ = bad.add_var(1.0);
        bad.add_row(&[], Op::Ge, 1.0); // 0 >= 1
        assert_eq!(
            presolve_and_solve(&bad, SolveVia::Primal, SimplexOptions::default()).unwrap_err(),
            LpError::Infeasible
        );
    }

    #[test]
    fn unused_variable_fixed_or_unbounded() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(1.0);
        let unused = m.add_var(3.0);
        m.add_row(&[(x, 1.0)], Op::Ge, 1.0);
        let sol = presolve_and_solve(&m, SolveVia::Primal, SimplexOptions::default()).unwrap();
        assert_eq!(sol.values[unused], 0.0);
        assert!((sol.objective - 1.0).abs() < 1e-9);

        let mut ub = Model::new(Sense::Minimize);
        let _x = ub.add_var(-1.0); // min -x with x unused & unbounded above
        assert_eq!(
            presolve_and_solve(&ub, SolveVia::Primal, SimplexOptions::default()).unwrap_err(),
            LpError::Unbounded
        );
    }

    #[test]
    fn singleton_equality_substitution_cascades() {
        // x = 4; x + y = 6 becomes y = 2 after substitution.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(1.0);
        let y = m.add_var(1.0);
        m.add_row(&[(x, 2.0)], Op::Eq, 8.0);
        m.add_row(&[(x, 1.0), (y, 1.0)], Op::Eq, 6.0);
        let sol = presolve_and_solve(&m, SolveVia::Primal, SimplexOptions::default()).unwrap();
        assert!((sol.values[x] - 4.0).abs() < 1e-9);
        assert!((sol.values[y] - 2.0).abs() < 1e-9);
        assert!((sol.objective - 6.0).abs() < 1e-9);
        assert_eq!(sol.iterations, 0, "fully presolved; no simplex needed");
    }

    #[test]
    fn negative_fix_of_nonneg_var_is_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(1.0);
        m.add_row(&[(x, 1.0)], Op::Eq, -3.0);
        assert_eq!(
            presolve_and_solve(&m, SolveVia::Primal, SimplexOptions::default()).unwrap_err(),
            LpError::Infeasible
        );
    }

    #[test]
    fn free_variable_fix_can_be_negative() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var_free(1.0);
        let y = m.add_var(0.5);
        m.add_row(&[(x, 1.0)], Op::Eq, -3.0);
        m.add_row(&[(y, 1.0), (x, 1.0)], Op::Ge, 0.0); // y >= 3
        let sol = presolve_and_solve(&m, SolveVia::Primal, SimplexOptions::default()).unwrap();
        assert!((sol.values[x] + 3.0).abs() < 1e-9);
        assert!((sol.values[y] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn presolve_matches_direct_solve_on_mixed_model() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var(3.0);
        let b = m.add_var(2.0);
        let c = m.add_var(1.0);
        m.add_row(&[(c, 5.0)], Op::Eq, 10.0); // fixes c = 2
        m.add_row(&[(a, 1.0), (b, 1.0), (c, 1.0)], Op::Le, 6.0);
        m.add_row(&[(a, 1.0)], Op::Le, 3.0);
        let direct = m.solve(SolveVia::Primal).unwrap();
        let pre = presolve_and_solve(&m, SolveVia::Primal, SimplexOptions::default()).unwrap();
        assert!((direct.objective - pre.objective).abs() < 1e-9);
        for j in 0..3 {
            assert!((direct.values[j] - pre.values[j]).abs() < 1e-9);
        }
    }
}
