//! Dense column-major matrices and LU factorization with partial pivoting.
//!
//! The simplex engine re-derives its basis inverse from scratch every few
//! hundred pivots to shed accumulated floating-point drift; that
//! refactorization is a dense LU + `m` triangular solves.

/// A dense column-major `n×n` or `m×n` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    /// Column-major storage: entry `(i, j)` at `data[j * nrows + i]`.
    data: Vec<f64>,
}

impl DenseMatrix {
    /// All-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[j * self.nrows + i]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[j * self.nrows + i] = v;
    }

    /// Borrow column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Mutably borrow column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// `y = A x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        let mut y = vec![0.0; self.nrows];
        for j in 0..self.ncols {
            let xj = x[j];
            if xj != 0.0 {
                let col = self.col(j);
                for i in 0..self.nrows {
                    y[i] += col[i] * xj;
                }
            }
        }
        y
    }

    /// `y = Aᵀ x` (dot of every column with `x`).
    pub fn mul_vec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows);
        (0..self.ncols).map(|j| dot(self.col(j), x)).collect()
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// LU factorization `P·A = L·U` of a square matrix, with partial pivoting.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    /// Packed L (unit diagonal, below) and U (diagonal and above),
    /// column-major.
    lu: Vec<f64>,
    /// Row permutation: `perm[i]` is the original row in position `i`.
    perm: Vec<usize>,
}

/// Error returned when the matrix is numerically singular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix {
    /// Column at which no acceptable pivot was found.
    pub column: usize,
}

/// Panel width for the blocked LU factorization and the blocked multi-RHS
/// solves: updates are applied a panel at a time so each target column is
/// streamed through cache once per panel instead of once per eliminated
/// column. The value keeps a panel (width × column height) comfortably
/// inside L2 at the matrix sizes the simplex engine refactorizes.
const PANEL: usize = 48;

impl LuFactors {
    /// Factorize a square [`DenseMatrix`].
    ///
    /// Right-looking LU with partial pivoting, blocked by [`PANEL`]: the
    /// panel is factorized unblocked, then the trailing columns absorb the
    /// whole panel in one pass each. The arithmetic (and therefore the
    /// bit-exact result) is identical to the textbook unblocked loop — the
    /// per-column updates are applied in the same `k` order, only grouped —
    /// while the trailing block streams from memory once per panel instead
    /// of once per column.
    pub fn factor(a: &DenseMatrix) -> Result<Self, SingularMatrix> {
        assert_eq!(a.nrows, a.ncols, "LU requires a square matrix");
        let n = a.nrows;
        let mut lu = a.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut kb = 0;
        while kb < n {
            let kend = (kb + PANEL).min(n);
            // Unblocked factorization of the panel columns kb..kend. Row
            // swaps apply to the whole matrix immediately (right-looking
            // columns have not been updated yet, left columns are final L).
            for k in kb..kend {
                // Pivot search in column k, rows k..n.
                let col = &lu[k * n..(k + 1) * n];
                let mut piv = k;
                let mut piv_abs = col[k].abs();
                for i in (k + 1)..n {
                    let v = col[i].abs();
                    if v > piv_abs {
                        piv = i;
                        piv_abs = v;
                    }
                }
                if piv_abs < 1e-13 {
                    return Err(SingularMatrix { column: k });
                }
                if piv != k {
                    perm.swap(k, piv);
                    // Swap rows k and piv across all columns.
                    for j in 0..n {
                        lu.swap(j * n + k, j * n + piv);
                    }
                }
                let pivot = lu[k * n + k];
                // Compute multipliers.
                for i in (k + 1)..n {
                    lu[k * n + i] /= pivot;
                }
                // Rank-1 update of the remaining *panel* columns only.
                for j in (k + 1)..kend {
                    let ukj = lu[j * n + k];
                    if ukj != 0.0 {
                        // Split the column to appease the borrow checker:
                        // the multipliers live in column k, the target in
                        // column j.
                        let (lcols, rcols) = lu.split_at_mut(j * n);
                        let lk = &lcols[k * n..(k + 1) * n];
                        let cj = &mut rcols[..n];
                        for i in (k + 1)..n {
                            cj[i] -= lk[i] * ukj;
                        }
                    }
                }
            }
            // Trailing update: each column right of the panel absorbs all
            // panel eliminations in one cache-resident pass.
            for j in kend..n {
                for k in kb..kend {
                    let ukj = lu[j * n + k];
                    if ukj != 0.0 {
                        let (lcols, rcols) = lu.split_at_mut(j * n);
                        let lk = &lcols[k * n..(k + 1) * n];
                        let cj = &mut rcols[..n];
                        for i in (k + 1)..n {
                            cj[i] -= lk[i] * ukj;
                        }
                    }
                }
            }
            kb = kend;
        }
        Ok(Self { n, lu, perm })
    }

    /// The explicit inverse `A⁻¹`, equivalent to solving `A x = e_j` for
    /// every unit vector but with the right-hand sides processed in panels:
    /// the packed LU streams through cache once per panel of columns
    /// instead of once per column, which is the difference between seconds
    /// and minutes at the sizes the simplex engine refactorizes. Each
    /// column's arithmetic is identical to [`LuFactors::solve`] on its unit
    /// vector, so the result is bit-identical to the column-by-column loop.
    pub fn inverse(&self) -> DenseMatrix {
        let n = self.n;
        let mut out = DenseMatrix::zeros(n, n);
        // Column j of the permuted identity has its 1 where perm[i] == j.
        let mut inv_perm = vec![0usize; n];
        for (i, &p) in self.perm.iter().enumerate() {
            inv_perm[p] = i;
        }
        let mut jb = 0;
        while jb < n {
            let jend = (jb + PANEL).min(n);
            for j in jb..jend {
                out.col_mut(j)[inv_perm[j]] = 1.0;
            }
            // Forward substitution with unit-diagonal L, k-outer so the L
            // column is fetched once for the whole panel.
            for k in 0..n {
                let lcol = &self.lu[k * n..(k + 1) * n];
                for j in jb..jend {
                    let x = out.col_mut(j);
                    let xk = x[k];
                    if xk != 0.0 {
                        for i in (k + 1)..n {
                            x[i] -= lcol[i] * xk;
                        }
                    }
                }
            }
            // Back substitution with U.
            for k in (0..n).rev() {
                let ucol = &self.lu[k * n..(k + 1) * n];
                for j in jb..jend {
                    let x = out.col_mut(j);
                    x[k] /= ucol[k];
                    let xk = x[k];
                    if xk != 0.0 {
                        for i in 0..k {
                            x[i] -= ucol[i] * xk;
                        }
                    }
                }
            }
            jb = jend;
        }
        out
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit-diagonal L.
        for k in 0..n {
            let xk = x[k];
            if xk != 0.0 {
                let col = &self.lu[k * n..(k + 1) * n];
                for i in (k + 1)..n {
                    x[i] -= col[i] * xk;
                }
            }
        }
        // Back substitution with U.
        for k in (0..n).rev() {
            let col = &self.lu[k * n..(k + 1) * n];
            x[k] /= col[k];
            let xk = x[k];
            if xk != 0.0 {
                for (i, xi) in x.iter_mut().enumerate().take(k) {
                    *xi -= self.lu[k * n + i] * xk;
                }
            }
        }
        x
    }

    /// Solve `Aᵀ x = b`.
    pub fn solve_transpose(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let mut x = b.to_vec();
        // Uᵀ is lower-triangular: forward substitution.
        for k in 0..n {
            let col = &self.lu[k * n..(k + 1) * n];
            let mut acc = x[k];
            for (i, xi) in x.iter().enumerate().take(k) {
                acc -= col[i] * xi;
            }
            x[k] = acc / col[k];
        }
        // Lᵀ is unit upper-triangular: back substitution.
        for k in (0..n).rev() {
            let mut acc = x[k];
            let col_range = |j: usize| &self.lu[j * n..(j + 1) * n];
            for j in (k + 1)..n {
                acc -= col_range(k)[j] * x[j];
            }
            x[k] = acc;
        }
        // Undo permutation: we solved (PA)ᵀ y = ... carefully: A = Pᵀ L U,
        // Aᵀ x = b  ⇔  Uᵀ Lᵀ P x = b; after the two substitutions x holds
        // P·x_true, so scatter back.
        let mut out = vec![0.0; n];
        for (i, &p) in self.perm.iter().enumerate() {
            out[p] = x[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoind_rng::{Rng, SeededRng};

    fn random_matrix(n: usize, seed: u64) -> DenseMatrix {
        let mut rng = SeededRng::from_seed(seed);
        let mut m = DenseMatrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                m.set(i, j, rng.gen_range(-2.0..2.0));
            }
            // Diagonal boost keeps the random matrices comfortably regular.
            m.set(j, j, m.get(j, j) + 4.0);
        }
        m
    }

    #[test]
    fn identity_solves_trivially() {
        let id = DenseMatrix::identity(4);
        let lu = LuFactors::factor(&id).unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(lu.solve(&b), b);
        assert_eq!(lu.solve_transpose(&b), b);
    }

    #[test]
    fn solve_matches_matvec() {
        for seed in 0..10u64 {
            let n = 1 + (seed as usize % 12) * 3;
            let a = random_matrix(n, seed);
            let lu = LuFactors::factor(&a).unwrap();
            let mut rng = SeededRng::from_seed(seed + 100);
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let b = a.mul_vec(&x_true);
            let x = lu.solve(&b);
            for i in 0..n {
                assert!((x[i] - x_true[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn transpose_solve_matches() {
        for seed in 20..30u64 {
            let n = 2 + (seed as usize % 7) * 5;
            let a = random_matrix(n, seed);
            let lu = LuFactors::factor(&a).unwrap();
            let mut rng = SeededRng::from_seed(seed + 200);
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let b = a.mul_vec_transpose(&x_true);
            let x = lu.solve_transpose(&b);
            for i in 0..n {
                assert!((x[i] - x_true[i]).abs() < 1e-9, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [[0, 1], [1, 0]] needs a row swap.
        let mut a = DenseMatrix::zeros(2, 2);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        let lu = LuFactors::factor(&a).unwrap();
        let x = lu.solve(&[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let mut a = DenseMatrix::zeros(3, 3);
        for j in 0..3 {
            a.set(0, j, 1.0);
            a.set(1, j, 2.0); // row 1 = 2 * row 0
            a.set(2, j, j as f64);
        }
        assert!(LuFactors::factor(&a).is_err());
    }

    #[test]
    fn matvec_transpose_consistency() {
        let a = random_matrix(8, 5);
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..8).map(|i| (8 - i) as f64).collect();
        // y' (A x) == (A' y)' x
        let lhs: f64 = a.mul_vec(&x).iter().zip(&y).map(|(u, v)| u * v).sum();
        let rhs: f64 = a
            .mul_vec_transpose(&y)
            .iter()
            .zip(&x)
            .map(|(u, v)| u * v)
            .sum();
        assert!((lhs - rhs).abs() < 1e-9);
    }
}
