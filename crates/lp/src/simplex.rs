//! Revised primal simplex on computational standard form.
//!
//! Solves `min c·x  s.t.  A x = b, x ≥ 0` with `b ≥ 0`, where `A` is a
//! sparse [`CscMatrix`] whose columns include any slack/surplus columns the
//! caller appended. The engine:
//!
//! * crashes an initial basis from unit columns (slacks), adding artificial
//!   variables only for uncovered rows;
//! * runs phase 1 (min Σ artificials) only when artificials exist, then
//!   pivots surviving zero-level artificials out (redundant rows keep theirs,
//!   harmlessly);
//! * maintains an explicit basis inverse with exact-zero block structure:
//!   refactorization (every [`SimplexOptions::refactor_every`] pivots, to
//!   shed drift) factors only the k×k block of non-singleton basic columns
//!   — `O(k³ + k·m)` instead of `O(m³)`, a decisive saving on the
//!   slack-heavy bases these LPs produce (see `Engine::refactorize`);
//! * carries the row duals incrementally across pivots (`O(m)` per pivot
//!   instead of a from-scratch `O(m²)` BTRAN), re-verifying any claimed
//!   optimum against freshly computed duals before trusting it;
//! * prices with Dantzig's rule and falls back to Bland's rule after a long
//!   degenerate stall (anti-cycling).
//!
//! The problems this crate was built for (duals of optimal-mechanism LPs)
//! are *column-heavy*: millions of columns over a few thousand rows, every
//! column carrying 1–3 nonzeros. All per-iteration work is therefore either
//! dense against the (mostly exactly-zero) inverse or `O(nnz)` sparse
//! (pricing), never `O(m·n)` dense.

use crate::dense::{DenseMatrix, LuFactors};
use crate::sparse::CscMatrix;
use geoind_testkit::failpoint;

/// Magnitude below which drift-induced negative variable values are
/// clipped to exact zero when a solution is extracted. Consumers deriving
/// feasibility tolerances from solver output (e.g. channel certification)
/// must budget for truncation of this size on top of
/// [`SimplexOptions::opt_tol`].
pub const VALUE_CLIP: f64 = 1e-7;

/// Row count from which the engine carries duals incrementally across
/// pivots instead of recomputing them by a BTRAN each iteration. Below
/// this, the `O(m²)` recompute is cheap and its exact-to-the-basis duals
/// make tied pricing decisions maximally reproducible across pivot paths
/// (warm and cold solves of a degenerate LP tend to exit at the same
/// vertex); above it, the recompute dominates the whole solve and the
/// incremental update — exact in real arithmetic, drift-checked at every
/// claimed optimum — is the only way large instances finish at all.
const INCREMENTAL_DUALS_MIN_ROWS: usize = 1024;

/// A linear program in computational standard form.
#[derive(Debug, Clone)]
pub struct StandardLp {
    /// Constraint matrix (structural + slack columns).
    pub cols: CscMatrix,
    /// Objective coefficients, one per column.
    pub costs: Vec<f64>,
    /// Right-hand side, `b ≥ 0`.
    pub rhs: Vec<f64>,
}

/// Entering-variable selection rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pricing {
    /// Most negative reduced cost. Simple and cheap per iteration.
    #[default]
    Dantzig,
    /// Devex (Forrest–Goldfarb) approximate steepest edge: picks the column
    /// maximizing `d_j² / w_j` with reference weights updated each pivot.
    /// Costs one extra BTRAN per iteration but typically needs markedly
    /// fewer pivots on degenerate LPs like the optimal-mechanism duals.
    Devex,
}

/// An optimal basis exported from a finished solve, reusable to warm-start
/// a later solve of a structurally identical LP (same constraint matrix and
/// costs, different right-hand side — the classic dual-simplex restart).
///
/// The representation is positional in the *standard-form* column space the
/// engine actually pivoted in: entry `i` names the column basic in row `i`,
/// or `None` where an artificial variable stayed basic (redundant rows).
/// A basis only round-trips between solves whose standard forms share the
/// same shape; the engine validates this and silently falls back to a cold
/// start on any mismatch, so a stale basis can never corrupt a solve.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Basis {
    rows: Vec<Option<usize>>,
}

impl Basis {
    /// An empty basis: never matches any LP, so it always cold-starts.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of rows this basis was exported from (0 for an empty basis).
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// True when the basis carries no row assignments.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Remap this basis for a standard form that grew by `added` columns
    /// inserted at column index `insert_at` (row count unchanged): every
    /// entry at or past the insertion point shifts up by `added`, entries
    /// before it are untouched, and none of the new columns is basic.
    ///
    /// This is the delayed-constraint-generation bridge: appending cut rows
    /// to a primal model appends dual variables — standard-form *columns* —
    /// in the dualized LP the engine actually pivots on, and the old optimal
    /// basis stays primal-feasible for the grown LP (same rows, same rhs)
    /// once its column references are shifted past the insertion block.
    pub fn with_columns_inserted(&self, insert_at: usize, added: usize) -> Basis {
        Basis {
            rows: self
                .rows
                .iter()
                .map(|a| a.map(|j| if j >= insert_at { j + added } else { j }))
                .collect(),
        }
    }

    /// Extend this basis for a standard form that gained rows, each covered
    /// by a fresh basic column (its slack): `new_basic` names, in order, the
    /// column basic in each appended row. This is the primal-path analogue
    /// of [`Basis::with_columns_inserted`] — after a row append, the old
    /// basis plus the new slack columns is a valid starting basis.
    pub fn with_rows_appended(&self, new_basic: &[usize]) -> Basis {
        let mut rows = self.rows.clone();
        rows.extend(new_basic.iter().map(|&j| Some(j)));
        Basis { rows }
    }
}

/// Tuning knobs for the simplex engine.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard cap on pivots across both phases.
    pub max_iterations: usize,
    /// Dual-feasibility tolerance on reduced costs.
    pub opt_tol: f64,
    /// Minimum pivot magnitude accepted by the ratio test.
    pub pivot_tol: f64,
    /// Rebuild the basis inverse from an LU every this many pivots.
    /// `0` (the default) means automatic: `max(600, m)` for an `m`-row LP,
    /// so small problems keep the tight drift window while large ones —
    /// where a refactorization is an `O(m³)` event that can dwarf the
    /// pivots it covers — refactorize a bounded number of times per solve.
    /// Accuracy does not ride on the cadence alone: every claimed optimum
    /// is re-verified against freshly computed duals, and the exit path
    /// refactorizes, refines, and residual-gates the result regardless.
    pub refactor_every: usize,
    /// Consecutive non-improving pivots before switching to Bland's rule.
    pub stall_limit: usize,
    /// Entering-variable selection rule.
    pub pricing: Pricing,
    /// Largest `‖Ax − b‖∞` accepted at an optimal exit; a nominally
    /// optimal basis with a larger residual is demoted to
    /// [`SimplexStatus::SingularBasis`] instead of being reported as a
    /// trustworthy optimum.
    pub residual_tol: f64,
    /// Optional warm-start basis from a previous solve of a structurally
    /// identical LP. When it is shape-compatible, factorizable, and
    /// dual-feasible for this LP's costs, the engine restores primal
    /// feasibility with dual-simplex pivots instead of solving from
    /// scratch; on any mismatch it falls back to a cold start, so the
    /// result is identical in status and always a true optimum.
    pub start_basis: Option<Basis>,
    /// How [`SimplexOptions::start_basis`] is used — the classic
    /// dual-simplex restart, or primal continuation after a column append.
    pub warm_mode: WarmMode,
}

/// Strategy applied to [`SimplexOptions::start_basis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmMode {
    /// Same matrix and costs, different rhs (the MSM sibling pattern): the
    /// donor basis is dual-feasible, so restore primal feasibility with
    /// dual-simplex pivots.
    #[default]
    DualRestart,
    /// The LP gained columns since the basis was exported (delayed
    /// constraint generation: appended cuts become new dual columns) and
    /// the basis was remapped with [`Basis::with_columns_inserted`]. Rows
    /// and rhs are unchanged, so the basis is still primal-feasible but the
    /// new columns price favorably by construction — skip the
    /// dual-feasibility screen and resume primal phase 2 directly.
    PrimalContinue,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            max_iterations: 2_000_000,
            opt_tol: 1e-9,
            pivot_tol: 1e-9,
            refactor_every: 0,
            stall_limit: 2_000,
            pricing: Pricing::Dantzig,
            residual_tol: 1e-6,
            start_basis: None,
            warm_mode: WarmMode::default(),
        }
    }
}

/// Termination status of a simplex run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimplexStatus {
    /// Optimal basic feasible solution found.
    Optimal,
    /// Phase 1 could not drive the artificials to zero.
    Infeasible,
    /// The objective decreases without bound.
    Unbounded,
    /// `max_iterations` exhausted.
    IterationLimit,
    /// The basis became numerically singular (LU refactorization failed,
    /// or a nominally optimal exit violated the residual tolerance). The
    /// reported solution cannot be certified.
    SingularBasis,
}

/// Result of a simplex run.
#[derive(Debug, Clone)]
pub struct SimplexResult {
    /// Why the run stopped.
    pub status: SimplexStatus,
    /// Primal values, one per column of the input (valid when `Optimal`).
    pub x: Vec<f64>,
    /// Row duals `y = B⁻ᵀ c_B` at the final basis (valid when `Optimal`).
    pub duals: Vec<f64>,
    /// Objective value `c·x`.
    pub objective: f64,
    /// Total pivots performed.
    pub iterations: usize,
    /// `‖Ax − b‖∞` at exit — a self-check on accumulated drift.
    pub residual: f64,
    /// Worst dual-feasibility violation at exit: the most negative reduced
    /// cost over nonbasic columns, reported as a non-negative magnitude
    /// (0 when the exit basis prices out cleanly).
    pub dual_residual: f64,
    /// The final basis, exportable as [`SimplexOptions::start_basis`] for a
    /// warm-started solve of a structurally identical LP. Only meaningful
    /// when the run ended [`SimplexStatus::Optimal`].
    pub basis: Basis,
}

/// Identifier for a basic variable: a real column or an artificial for a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Basic {
    Col(usize),
    Artificial(usize),
}

struct Engine<'a> {
    lp: &'a StandardLp,
    opts: SimplexOptions,
    m: usize,
    basis: Vec<Basic>,
    /// Which columns are currently basic.
    in_basis: Vec<bool>,
    /// Explicit basis inverse, column-major.
    binv: DenseMatrix,
    /// Values of the basic variables.
    xb: Vec<f64>,
    iterations: usize,
    pivots_since_refactor: usize,
    /// Set when an LU refactorization fails: the explicit inverse can no
    /// longer be trusted, so the run must stop at the next loop head.
    singular: bool,
    /// Devex reference weights, one per real column (unused under Dantzig).
    devex: Vec<f64>,
}

impl<'a> Engine<'a> {
    fn new(lp: &'a StandardLp, opts: SimplexOptions) -> Self {
        let m = lp.rhs.len();
        assert_eq!(lp.cols.nrows(), m, "matrix/rhs row mismatch");
        assert_eq!(lp.costs.len(), lp.cols.ncols(), "cost/column mismatch");
        assert!(
            lp.rhs.iter().all(|&b| b >= 0.0),
            "standard form requires b >= 0"
        );

        // Crash: cover each row with a unit (+1 singleton) column if one
        // exists; otherwise an artificial.
        let mut row_cover: Vec<Option<usize>> = vec![None; m];
        for j in 0..lp.cols.ncols() {
            let mut it = lp.cols.col(j);
            if let (Some((r, v)), None) = (it.next(), it.next()) {
                if (v - 1.0).abs() < 1e-12 && row_cover[r].is_none() {
                    row_cover[r] = Some(j);
                }
            }
        }
        let mut in_basis = vec![false; lp.cols.ncols()];
        let basis: Vec<Basic> = row_cover
            .iter()
            .enumerate()
            .map(|(r, cov)| match cov {
                Some(j) => {
                    in_basis[*j] = true;
                    Basic::Col(*j)
                }
                None => Basic::Artificial(r),
            })
            .collect();
        let devex = if opts.pricing == Pricing::Devex {
            vec![1.0; lp.cols.ncols()]
        } else {
            Vec::new()
        };
        Self {
            lp,
            opts,
            m,
            basis,
            in_basis,
            binv: DenseMatrix::identity(m),
            xb: lp.rhs.clone(),
            iterations: 0,
            pivots_since_refactor: 0,
            singular: false,
            devex,
        }
    }

    fn has_artificials(&self) -> bool {
        self.basis.iter().any(|b| matches!(b, Basic::Artificial(_)))
    }

    /// Cost of a basic variable under the given phase.
    fn basic_cost(&self, b: Basic, phase1: bool) -> f64 {
        match (b, phase1) {
            (Basic::Artificial(_), true) => 1.0,
            (Basic::Artificial(_), false) => 0.0,
            (Basic::Col(j), true) => {
                let _ = j;
                0.0
            }
            (Basic::Col(j), false) => self.lp.costs[j],
        }
    }

    /// Row duals for the current basis and phase.
    fn duals(&self, phase1: bool) -> Vec<f64> {
        let cb: Vec<f64> = self
            .basis
            .iter()
            .map(|&b| self.basic_cost(b, phase1))
            .collect();
        self.binv.mul_vec_transpose(&cb)
    }

    /// Dantzig / Devex (or Bland) pricing: pick an entering column.
    fn price(&self, y: &[f64], phase1: bool, bland: bool) -> Option<usize> {
        let devex = self.opts.pricing == Pricing::Devex && !bland;
        // (column, score) where score is -d for Dantzig, d²/w for Devex.
        let mut best: Option<(usize, f64)> = None;
        for j in 0..self.lp.cols.ncols() {
            if self.in_basis[j] {
                continue;
            }
            let cj = if phase1 { 0.0 } else { self.lp.costs[j] };
            let d = cj - self.lp.cols.col_dot(j, y);
            if d < -self.opts.opt_tol {
                if bland {
                    return Some(j);
                }
                let score = if devex { d * d / self.devex[j] } else { -d };
                if best.is_none_or(|(_, bs)| score > bs) {
                    best = Some((j, score));
                }
            }
        }
        best.map(|(j, _)| j)
    }

    /// Devex weight update after selecting entering `q` with FTRAN column
    /// `w` and leaving row `r` (Forrest–Goldfarb reference framework).
    /// `rho` is row `r` of the pre-pivot `B⁻¹`, gathered by the caller
    /// (which also needs it for the incremental dual update):
    /// `alpha_j = A_jᵀ·rho` for nonbasic `j`.
    fn update_devex(&mut self, q: usize, r: usize, w: &[f64], rho: &[f64]) {
        if self.opts.pricing != Pricing::Devex {
            return;
        }
        let alpha_q = w[r];
        if alpha_q.abs() < self.opts.pivot_tol {
            return;
        }
        let wq = self.devex[q].max(1.0);
        let scale = wq / (alpha_q * alpha_q);
        let mut overflow = false;
        for j in 0..self.lp.cols.ncols() {
            if j == q || self.in_basis[j] {
                continue;
            }
            let alpha_j = self.lp.cols.col_dot(j, rho);
            if alpha_j != 0.0 {
                let cand = alpha_j * alpha_j * scale;
                if cand > self.devex[j] {
                    self.devex[j] = cand;
                    if cand > 1e12 {
                        overflow = true;
                    }
                }
            }
        }
        // The leaving variable re-enters the nonbasic pool.
        if let Basic::Col(j) = self.basis[r] {
            self.devex[j] = (wq / (alpha_q * alpha_q)).max(1.0);
        }
        // Reset the reference framework when weights blow up.
        if overflow {
            for v in &mut self.devex {
                *v = 1.0;
            }
        }
    }

    /// FTRAN: `w = B⁻¹ A_q`.
    fn ftran(&self, q: usize) -> Vec<f64> {
        let mut w = vec![0.0; self.m];
        for (r, v) in self.lp.cols.col(q) {
            let col = self.binv.col(r);
            for i in 0..self.m {
                w[i] += v * col[i];
            }
        }
        w
    }

    /// Ratio test; returns the leaving row. `None` means unbounded.
    fn ratio_test(&self, w: &[f64], bland: bool) -> Option<usize> {
        let mut best: Option<(usize, f64, f64)> = None; // (row, theta, |w|)
        for i in 0..self.m {
            if w[i] > self.opts.pivot_tol {
                let theta = self.xb[i] / w[i];
                match best {
                    None => best = Some((i, theta, w[i])),
                    Some((bi, bt, bw)) => {
                        let better = if bland {
                            // Bland: smallest basic index among ties.
                            theta < bt - 1e-12
                                || (theta < bt + 1e-12
                                    && self.basic_order(i) < self.basic_order(bi))
                        } else {
                            theta < bt - 1e-12 || (theta < bt + 1e-12 && w[i] > bw)
                        };
                        if better {
                            best = Some((i, theta, w[i]));
                        }
                    }
                }
            }
        }
        best.map(|(i, _, _)| i)
    }

    /// Total order on basic variables used by Bland's rule (artificials
    /// after all real columns).
    fn basic_order(&self, row: usize) -> usize {
        match self.basis[row] {
            Basic::Col(j) => j,
            Basic::Artificial(r) => self.lp.cols.ncols() + r,
        }
    }

    /// Apply the pivot: column `q` enters, row `r` leaves.
    fn pivot(&mut self, r: usize, q: usize, w: &[f64]) {
        let theta = self.xb[r] / w[r];
        for i in 0..self.m {
            self.xb[i] -= theta * w[i];
        }
        self.xb[r] = theta;
        if let Basic::Col(j) = self.basis[r] {
            self.in_basis[j] = false;
        }
        self.basis[r] = Basic::Col(q);
        self.in_basis[q] = true;

        // Rank-1 update of the explicit inverse.
        let wr = w[r];
        for k in 0..self.m {
            let col = self.binv.col_mut(k);
            let t = col[r];
            if t != 0.0 {
                let t = t / wr;
                for i in 0..self.m {
                    col[i] -= w[i] * t;
                }
                col[r] = t;
            }
        }
        self.iterations += 1;
        self.pivots_since_refactor += 1;
        let cadence = if self.opts.refactor_every == 0 {
            self.m.max(600)
        } else {
            self.opts.refactor_every
        };
        if self.pivots_since_refactor >= cadence {
            self.refactorize();
        }
    }

    /// Rebuild `binv` and `xb` from scratch.
    ///
    /// The bases this engine sees are *slack-heavy*: at an optimum of an
    /// optimal-mechanism dual most rows keep their slack basic (the primal
    /// channel is sparse), so up to row/column permutation the basis matrix
    /// is `[[M, 0], [C, D]]` — `D` diagonal from singleton basic columns
    /// (slacks and artificials), `M` the square block of general columns on
    /// the k rows no singleton covers, `C` those columns' entries on the
    /// covered rows. Only `M` needs an LU; the inverse assembles in block
    /// form
    ///
    /// ```text
    ///   B⁻¹ = [[ M⁻¹,          0   ],
    ///          [ −D⁻¹·C·M⁻¹,   D⁻¹ ]]
    /// ```
    ///
    /// in `O(k³ + k·m)` instead of the `O(m³)` of a full dense LU plus m
    /// triangular solves — at m in the thousands with k ≪ m, milliseconds
    /// instead of a minute. Just as important, the assembled inverse is
    /// *exactly* zero outside the k dense columns and the diagonal
    /// singletons, which keeps the per-pivot rank-1 update (it skips
    /// exact-zero entries) proportional to the dense block, not to m².
    fn refactorize(&mut self) {
        self.pivots_since_refactor = 0;
        let m = self.m;
        // Split the basis: a singleton column at position p with value v on
        // row r contributes the diagonal entry D[r,r] = v; everything else
        // is part of the general block.
        let mut unit_of_row: Vec<Option<(usize, f64)>> = vec![None; m];
        let mut structural: Vec<usize> = Vec::new();
        for (p, &var) in self.basis.iter().enumerate() {
            let singleton = match var {
                Basic::Artificial(r) => Some((r, 1.0)),
                Basic::Col(j) => {
                    let mut it = self.lp.cols.col(j);
                    match (it.next(), it.next()) {
                        (Some((r, v)), None) if v != 0.0 => Some((r, v)),
                        _ => None,
                    }
                }
            };
            match singleton {
                Some((r, _)) if unit_of_row[r].is_some() => {
                    // Two singleton columns on one row: linearly dependent
                    // basis, no factorization exists.
                    self.singular = true;
                    return;
                }
                Some((r, v)) => unit_of_row[r] = Some((p, v)),
                None => structural.push(p),
            }
        }
        // Rows no singleton covers, ascending (a fixed, thread-independent
        // order keeps refactorization bit-deterministic).
        let mut t_of_row: Vec<Option<usize>> = vec![None; m];
        let mut t_rows: Vec<usize> = Vec::new();
        for (r, unit) in unit_of_row.iter().enumerate() {
            if unit.is_none() {
                t_of_row[r] = Some(t_rows.len());
                t_rows.push(r);
            }
        }
        let k = structural.len();
        debug_assert_eq!(t_rows.len(), k);
        // Factor the k×k general block M and invert it column by column.
        let mut block = DenseMatrix::zeros(k, k);
        for (s, &p) in structural.iter().enumerate() {
            let Basic::Col(j) = self.basis[p] else {
                unreachable!("artificials are singletons")
            };
            for (r, v) in self.lp.cols.col(j) {
                if let Some(t) = t_of_row[r] {
                    block.set(t, s, v);
                }
            }
        }
        let lu = match LuFactors::factor(&block) {
            Ok(lu) => lu,
            Err(_) => {
                // Numerically singular refactorization: the rank-1-updated
                // inverse we still hold is the very thing that drifted into
                // an uninvertible basis, so continuing would pivot on
                // garbage. Flag the run; the phase loop aborts with
                // `SingularBasis` at its next head.
                self.singular = true;
                return;
            }
        };
        let minv = lu.inverse();
        // Per general column: its covered-row entries as
        // (singleton position, entry / diagonal value) — the C and D⁻¹
        // factors of the lower-left block, pre-divided.
        let covered: Vec<Vec<(usize, f64)>> = structural
            .iter()
            .map(|&p| {
                let Basic::Col(j) = self.basis[p] else {
                    unreachable!("artificials are singletons")
                };
                self.lp
                    .cols
                    .col(j)
                    .filter_map(|(r, v)| unit_of_row[r].map(|(pu, vu)| (pu, v / vu)))
                    .collect()
            })
            .collect();
        // Assemble B⁻¹: uncovered-row columns carry M⁻¹ on general
        // positions and −D⁻¹·C·M⁻¹ on singleton positions; covered-row
        // columns carry the single diagonal entry 1/v; all else stays an
        // exact zero.
        let mut inv = DenseMatrix::zeros(m, m);
        for (t, &tr) in t_rows.iter().enumerate() {
            let mcol = minv.col(t);
            let col = inv.col_mut(tr);
            for (s, &ms) in mcol.iter().enumerate() {
                if ms == 0.0 {
                    continue;
                }
                col[structural[s]] = ms;
                for &(pu, scale) in &covered[s] {
                    col[pu] -= scale * ms;
                }
            }
        }
        for (r, unit) in unit_of_row.iter().enumerate() {
            if let Some((p, v)) = *unit {
                inv.col_mut(r)[p] = 1.0 / v;
            }
        }
        self.binv = inv;
        self.xb = self.binv.mul_vec(&self.lp.rhs);
        // Numerical guard: clip small negatives introduced by drift.
        for v in &mut self.xb {
            if *v < 0.0 && *v > -VALUE_CLIP {
                *v = 0.0;
            }
        }
    }

    /// Objective of the current basis under the given phase costs.
    fn objective(&self, phase1: bool) -> f64 {
        self.basis
            .iter()
            .zip(&self.xb)
            .map(|(&b, &v)| self.basic_cost(b, phase1) * v)
            .sum()
    }

    /// Run one phase to optimality. Returns `None` when optimal, otherwise a
    /// terminal status.
    fn run_phase(&mut self, phase1: bool) -> Option<SimplexStatus> {
        let mut bland = false;
        let mut stall = 0usize;
        let mut last_obj = self.objective(phase1);
        // The row duals are carried *incrementally* across pivots: a
        // from-scratch BTRAN reads the whole m×m inverse every iteration
        // and dominates the solve once m reaches the thousands. After a
        // pivot (entering q, leaving row r) the exact update is
        // `y' = y + (d_q/w_r)·ρ_r` with ρ_r row r of the pre-pivot
        // inverse: a surviving basic column i keeps B_iᵀy' = c_i because
        // B_iᵀρ_r = (B⁻¹B_i)_r = 0, and the entering column satisfies
        // A_qᵀy' = c_q because A_qᵀρ_r = w_r cancels against d_q. Rounding
        // drift still accumulates, so the vector is rebuilt whenever the
        // inverse itself is refactorized, and a claimed optimum is never
        // trusted until it re-prices clean against freshly computed duals.
        // Small LPs keep the per-iteration recompute (see
        // [`INCREMENTAL_DUALS_MIN_ROWS`]).
        let incremental = self.m >= INCREMENTAL_DUALS_MIN_ROWS;
        let mut y = self.duals(phase1);
        loop {
            // `lp.refactor.singular` simulates an LU refactorization
            // collapsing at the point where the run would detect it.
            if self.singular || failpoint::hit("lp.refactor.singular") {
                self.singular = true;
                return Some(SimplexStatus::SingularBasis);
            }
            if self.iterations >= self.opts.max_iterations
                || failpoint::hit("lp.iterations.exhausted")
            {
                return Some(SimplexStatus::IterationLimit);
            }
            if !incremental {
                y = self.duals(phase1);
            }
            let q = match self.price(&y, phase1, bland) {
                Some(q) => q,
                None => {
                    if !incremental {
                        return None; // phase-optimal under exact duals
                    }
                    // Optimal under the incrementally maintained (hence
                    // drifted) duals — recompute exactly and re-price
                    // before declaring the phase done; pricing clean
                    // against exact duals certifies the phase optimum.
                    y = self.duals(phase1);
                    self.price(&y, phase1, bland)?
                }
            };
            let cq = if phase1 { 0.0 } else { self.lp.costs[q] };
            let dq = cq - self.lp.cols.col_dot(q, &y);
            let w = self.ftran(q);
            let Some(r) = self.ratio_test(&w, bland) else {
                // Phase 1 is bounded below by 0, so an unbounded ray here
                // signals numerical trouble; report it as unbounded anyway.
                return Some(SimplexStatus::Unbounded);
            };
            // Row r of B⁻¹, gathered before the pivot mutates the inverse;
            // shared by the Devex update and the dual update.
            let rho: Vec<f64> = (0..self.m).map(|i| self.binv.col(i)[r]).collect();
            self.update_devex(q, r, &w, &rho);
            let step = dq / w[r];
            self.pivot(r, q, &w);
            if incremental {
                if self.pivots_since_refactor == 0 {
                    // The pivot crossed the refactorization cadence and
                    // rebuilt the inverse; rebase the duals on it too.
                    y = self.duals(phase1);
                } else {
                    for (yi, &ri) in y.iter_mut().zip(&rho) {
                        *yi += step * ri;
                    }
                }
            }
            let obj = self.objective(phase1);
            if obj < last_obj - 1e-12 {
                last_obj = obj;
                stall = 0;
                bland = false;
            } else {
                stall += 1;
                if stall > self.opts.stall_limit {
                    bland = true;
                }
            }
        }
    }

    /// Install a donor basis exported from an earlier solve, replacing the
    /// crash basis. Returns `false` when the basis does not fit this LP
    /// (row-count mismatch, out-of-range or repeated columns, or a
    /// numerically singular factorization) — the caller then cold-starts.
    fn install_basis(&mut self, warm: &Basis) -> bool {
        if warm.rows.len() != self.m {
            return false;
        }
        let ncols = self.lp.cols.ncols();
        let mut in_basis = vec![false; ncols];
        for assigned in warm.rows.iter().flatten() {
            if *assigned >= ncols || in_basis[*assigned] {
                return false;
            }
            in_basis[*assigned] = true;
        }
        self.basis = warm
            .rows
            .iter()
            .enumerate()
            .map(|(r, a)| match a {
                Some(j) => Basic::Col(*j),
                None => Basic::Artificial(r),
            })
            .collect();
        self.in_basis = in_basis;
        // A fresh LU of the donor basis against *this* LP's rhs: basic
        // values may come out negative (the whole point of the dual-simplex
        // restart), but the factorization itself must succeed.
        self.refactorize();
        !self.singular
    }

    /// Phase-2 dual feasibility of the current basis: every nonbasic
    /// reduced cost within `-opt_tol`. A donor basis from a sibling LP with
    /// identical matrix and costs passes exactly; anything else (e.g. a
    /// basis reused across genuinely different LPs) fails here and triggers
    /// the cold fallback.
    fn dual_feasible(&self) -> bool {
        let y = self.duals(false);
        for j in 0..self.lp.cols.ncols() {
            if self.in_basis[j] {
                continue;
            }
            let d = self.lp.costs[j] - self.lp.cols.col_dot(j, &y);
            if d < -self.opts.opt_tol {
                return false;
            }
        }
        true
    }

    /// Dual simplex from a dual-feasible basis whose basic values may be
    /// negative under this LP's rhs: repeatedly drop the most negative
    /// basic variable and enter the column preserving dual feasibility
    /// (textbook dual ratio test), until `xb ≥ 0`. Every selection is a
    /// pure function of (LP, basis) — lowest index breaks ties — so the
    /// pivot sequence is independent of threads or timing. Returns `false`
    /// when the restart should be abandoned for a cold solve (numerical
    /// trouble, apparent infeasibility, or a blown pivot budget).
    fn restore_primal_feasibility(&mut self) -> bool {
        // The restart only pays off while it is much cheaper than a cold
        // solve; past this budget, give up and let the cold path decide.
        let cap = self.opts.max_iterations.min(4 * self.m + 128);
        // Duals carried incrementally across pivots on large LPs, exactly
        // as in `run_phase` — the dual-simplex basis change is the same
        // basis change, so the same `y' = y + (d_q/w_r)·ρ_r` update
        // applies. Any drift is caught downstream: the caller always
        // finishes with `run_phase(false)`, which re-verifies optimality
        // against freshly computed duals.
        let incremental = self.m >= INCREMENTAL_DUALS_MIN_ROWS;
        let mut y = self.duals(false);
        loop {
            if self.singular {
                return false;
            }
            let mut leave: Option<usize> = None;
            let mut worst = -1e-9;
            for i in 0..self.m {
                if self.xb[i] < worst {
                    worst = self.xb[i];
                    leave = Some(i);
                }
            }
            let Some(r) = leave else {
                return true; // primal-feasible
            };
            if self.iterations >= cap {
                return false;
            }
            if !incremental {
                y = self.duals(false);
            }
            // Row r of B⁻¹, gathered once.
            let rho: Vec<f64> = (0..self.m).map(|k| self.binv.col(k)[r]).collect();
            let mut best: Option<(usize, f64)> = None;
            for j in 0..self.lp.cols.ncols() {
                if self.in_basis[j] {
                    continue;
                }
                let alpha = self.lp.cols.col_dot(j, &rho);
                if alpha < -self.opts.pivot_tol {
                    let d = self.lp.costs[j] - self.lp.cols.col_dot(j, &y);
                    let ratio = d.max(0.0) / -alpha;
                    let better = match best {
                        None => true,
                        Some((bj, br)) => ratio < br - 1e-12 || (ratio < br + 1e-12 && j < bj),
                    };
                    if better {
                        best = Some((j, ratio));
                    }
                }
            }
            // No eligible column: the row certifies primal infeasibility
            // (or the basis has drifted); the cold path is authoritative.
            let Some((q, _)) = best else {
                return false;
            };
            let dq = self.lp.costs[q] - self.lp.cols.col_dot(q, &y);
            let w = self.ftran(q);
            if w[r] >= -self.opts.pivot_tol {
                return false; // rho-gathered alpha disagrees with FTRAN
            }
            self.update_devex(q, r, &w, &rho);
            let step = dq / w[r];
            self.pivot(r, q, &w);
            if incremental {
                if self.pivots_since_refactor == 0 {
                    y = self.duals(false);
                } else {
                    for (yi, &ri) in y.iter_mut().zip(&rho) {
                        *yi += step * ri;
                    }
                }
            }
        }
    }

    /// Primal feasibility of the current basic values. `install_basis`
    /// already clipped drift-level negatives during its refactorization, so
    /// any remaining negative entry means the basis is genuinely infeasible
    /// for this LP's rhs and a primal continuation must fall back to cold.
    fn primal_feasible(&self) -> bool {
        self.xb.iter().all(|&v| v >= 0.0)
    }

    /// Sum of basic-artificial values — the phase-1 objective. A warm
    /// start that leaves an artificial basic at a real value has silently
    /// produced an infeasible point (cold starts catch this in phase 1),
    /// so the warm path must reject it.
    fn artificial_mass(&self) -> f64 {
        self.basis
            .iter()
            .zip(&self.xb)
            .filter(|(b, _)| matches!(b, Basic::Artificial(_)))
            .map(|(_, &v)| v.abs())
            .sum()
    }

    /// After phase 1: pivot basic artificials out wherever possible.
    fn purge_artificials(&mut self) {
        for row in 0..self.m {
            if !matches!(self.basis[row], Basic::Artificial(_)) {
                continue;
            }
            // Row `row` of B⁻¹, gathered.
            let rho: Vec<f64> = (0..self.m).map(|k| self.binv.col(k)[row]).collect();
            // Find any nonbasic real column with a usable pivot in this row.
            let mut found = None;
            for j in 0..self.lp.cols.ncols() {
                if self.in_basis[j] {
                    continue;
                }
                let a = self.lp.cols.col_dot(j, &rho);
                if a.abs() > 1e-7 {
                    found = Some(j);
                    break;
                }
            }
            if let Some(q) = found {
                let w = self.ftran(q);
                // Degenerate pivot: the artificial sits at zero, so theta=0
                // and feasibility is preserved regardless of the sign of w.
                debug_assert!(self.xb[row].abs() < 1e-6);
                self.xb[row] = 0.0;
                self.pivot(row, q, &w);
            }
            // else: redundant row; the artificial stays basic at zero and
            // can never move (its row of B⁻¹A is identically zero).
        }
    }

    /// One iterative-refinement pass on the final basis: correct the basic
    /// values by `xb += B⁻¹·(b − B·xb)`, shedding the drift the rank-1
    /// inverse updates accumulated since the last refactorization. A single
    /// pass is the standard accuracy/cost point — the correction is already
    /// quadratically small in the drift.
    fn refine(&mut self) {
        let mut r = self.lp.rhs.clone();
        for (i, &var) in self.basis.iter().enumerate() {
            match var {
                Basic::Col(j) => {
                    for (row, v) in self.lp.cols.col(j) {
                        r[row] -= v * self.xb[i];
                    }
                }
                Basic::Artificial(row) => r[row] -= self.xb[i],
            }
        }
        let dx = self.binv.mul_vec(&r);
        for i in 0..self.m {
            self.xb[i] += dx[i];
            if self.xb[i] < 0.0 && self.xb[i] > -VALUE_CLIP {
                self.xb[i] = 0.0;
            }
        }
    }

    /// Refine the phase-2 duals to (near) the correctly rounded solution of
    /// `Bᵀy = c_B` by iterating `y += B⁻ᵀ·(c_B − Bᵀy)` with the residual
    /// accumulated in doubled precision (Neumaier summation over exact
    /// `mul_add` product splits). The exact `y` at an optimum is a property
    /// of the optimal *vertex*, not of which degenerate basis represents
    /// it, so refining until the correction stops changing bits makes the
    /// reported duals independent of the pivot path — two solves reaching
    /// the same optimum (e.g. a delayed-constraint-generation run and a
    /// cold full-set run) report bit-identical duals even when they exit
    /// at different optimal bases.
    fn refined_duals(&self) -> Vec<f64> {
        let cb: Vec<f64> = self
            .basis
            .iter()
            .map(|&b| self.basic_cost(b, false))
            .collect();
        // y carried as an unevaluated double-double (hi + lo) so the
        // iteration converges to an ε²-accurate value before the final
        // rounding — a plain-f64 carrier can stall one ulp apart depending
        // on the basis it was approached through.
        let mut hi = self.binv.mul_vec_transpose(&cb);
        let mut lo = vec![0.0; self.m];
        let mut r = vec![0.0; self.m];
        for _ in 0..4 {
            for (i, &var) in self.basis.iter().enumerate() {
                // Doubled-precision r_i = cb_i − (Bᵀ(hi+lo))_i: Dekker-split
                // each product with mul_add, Neumaier-compensate the sum.
                let mut s = cb[i];
                let mut comp = 0.0;
                let add = |s: &mut f64, comp: &mut f64, v: f64, row: usize| {
                    let p = -(v * hi[row]);
                    let e = (-v).mul_add(hi[row], -p); // exact product error
                    let t = *s + p;
                    *comp += if s.abs() >= p.abs() {
                        (*s - t) + p
                    } else {
                        (p - t) + *s
                    };
                    *s = t;
                    *comp += e - v * lo[row];
                };
                match var {
                    Basic::Col(j) => {
                        for (row, v) in self.lp.cols.col(j) {
                            add(&mut s, &mut comp, v, row);
                        }
                    }
                    Basic::Artificial(row) => add(&mut s, &mut comp, 1.0, row),
                }
                r[i] = s + comp;
            }
            let dy = self.binv.mul_vec_transpose(&r);
            let mut changed = false;
            for k in 0..self.m {
                // Two-sum (hi, lo + dy) back into a normalized double-double.
                let b = lo[k] + dy[k];
                let s = hi[k] + b;
                let bb = s - hi[k];
                let err = (hi[k] - (s - bb)) + (b - bb);
                if s.to_bits() != hi[k].to_bits() || err.to_bits() != lo[k].to_bits() {
                    hi[k] = s;
                    lo[k] = err;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        hi
    }

    fn result(&self, status: SimplexStatus) -> SimplexResult {
        let mut x = vec![0.0; self.lp.cols.ncols()];
        for (i, &b) in self.basis.iter().enumerate() {
            if let Basic::Col(j) = b {
                x[j] = self.xb[i];
            }
        }
        // Clip drift-induced tiny negatives.
        for v in &mut x {
            if *v < 0.0 && *v > -VALUE_CLIP {
                *v = 0.0;
            }
        }
        let ax = self.lp.cols.mul_vec(&x);
        let mut residual = 0.0f64;
        for i in 0..self.m {
            let mut lhs = ax[i];
            if let Basic::Artificial(_) = self.basis[i] {
                lhs += self.xb[i]; // artificial contribution
            }
            residual = residual.max((lhs - self.lp.rhs[i]).abs());
        }
        let objective = x.iter().zip(&self.lp.costs).map(|(v, c)| v * c).sum();
        // At an optimal exit the duals are a deliverable (the dual solve
        // path reads primal values off them), so polish them to the
        // basis-independent rounding; elsewhere the one-shot BTRAN serves.
        let duals = if status == SimplexStatus::Optimal {
            self.refined_duals()
        } else {
            self.duals(false)
        };
        // Worst dual-feasibility violation over nonbasic columns — one
        // pricing-style sweep against the exit duals.
        let mut dual_residual = 0.0f64;
        for j in 0..self.lp.cols.ncols() {
            if self.in_basis[j] {
                continue;
            }
            let d = self.lp.costs[j] - self.lp.cols.col_dot(j, &duals);
            if -d > dual_residual {
                dual_residual = -d;
            }
        }
        let basis = Basis {
            rows: self
                .basis
                .iter()
                .map(|&b| match b {
                    Basic::Col(j) => Some(j),
                    Basic::Artificial(_) => None,
                })
                .collect(),
        };
        SimplexResult {
            status,
            x,
            duals,
            objective,
            iterations: self.iterations,
            residual,
            dual_residual,
            basis,
        }
    }
}

/// Phase 2 to optimality from a primal-feasible engine state, plus the
/// refinement pass and the residual quality gate shared by cold and warm
/// starts.
fn finish_phase2(mut eng: Engine) -> SimplexResult {
    match eng.run_phase(false) {
        Some(bad) => eng.result(bad),
        None => {
            // Re-derive the inverse from a fresh LU of the exit basis before
            // extracting the solution. This makes the reported numbers a
            // pure function of (LP, exit basis), independent of the pivot
            // history that reached it — two solves landing on the same
            // optimal basis (e.g. a cut-generation run and a cold full-set
            // run) report bit-identical values. Skipped when the inverse is
            // already fresh (zero pivots since the last refactorization),
            // where it would be an idempotent no-op.
            if eng.pivots_since_refactor > 0 {
                eng.refactorize();
                if eng.singular {
                    return eng.result(SimplexStatus::SingularBasis);
                }
            }
            eng.refine();
            let residual_tol = eng.opts.residual_tol;
            let mut r = eng.result(SimplexStatus::Optimal);
            // Quality gate: a basis that claims optimality but cannot
            // reproduce the right-hand side is numerically suspect —
            // demote it so callers never consume an uncertified optimum.
            if r.residual > residual_tol {
                r.status = SimplexStatus::SingularBasis;
            }
            r
        }
    }
}

/// Solve a [`StandardLp`] (minimization) with the revised simplex.
///
/// With [`SimplexOptions::start_basis`] set, the engine first attempts a
/// dual-simplex warm start from the donor basis; if the basis does not fit
/// this LP, is not dual-feasible for its costs, or the restart stalls, the
/// solve silently falls back to the ordinary cold start — warm starting can
/// change the pivot count, never the correctness of the result.
pub fn solve_standard(lp: &StandardLp, opts: SimplexOptions) -> SimplexResult {
    if let Some(warm) = opts.start_basis.clone() {
        let mut eng = Engine::new(lp, opts.clone());
        let usable = match opts.warm_mode {
            WarmMode::DualRestart => {
                eng.install_basis(&warm)
                    && eng.dual_feasible()
                    && eng.restore_primal_feasibility()
                    && eng.artificial_mass() <= 1e-7
            }
            WarmMode::PrimalContinue => {
                eng.install_basis(&warm) && eng.primal_feasible() && eng.artificial_mass() <= 1e-7
            }
        };
        if usable {
            return finish_phase2(eng);
        }
    }
    let mut eng = Engine::new(lp, opts);
    if eng.has_artificials() {
        if let Some(bad) = eng.run_phase(true) {
            return eng.result(bad);
        }
        let p1 = eng.objective(true);
        if p1 > 1e-7 {
            return eng.result(SimplexStatus::Infeasible);
        }
        eng.purge_artificials();
    }
    finish_phase2(eng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CscBuilder;

    /// Build a StandardLp from dense rows (appending nothing — caller
    /// includes slacks explicitly).
    fn lp_from_dense(a: &[&[f64]], costs: &[f64], rhs: &[f64]) -> StandardLp {
        let m = a.len();
        let n = a[0].len();
        let mut b = CscBuilder::new(m);
        for j in 0..n {
            let col: Vec<(usize, f64)> = (0..m).map(|i| (i, a[i][j])).collect();
            b.push_col(&col);
        }
        StandardLp {
            cols: b.finish(),
            costs: costs.to_vec(),
            rhs: rhs.to_vec(),
        }
    }

    #[test]
    fn slack_start_no_artificials() {
        // min -3x - 2y s.t. x + y + s1 = 4, x + 3y + s2 = 6.
        let lp = lp_from_dense(
            &[&[1.0, 1.0, 1.0, 0.0], &[1.0, 3.0, 0.0, 1.0]],
            &[-3.0, -2.0, 0.0, 0.0],
            &[4.0, 6.0],
        );
        let r = solve_standard(&lp, SimplexOptions::default());
        assert_eq!(r.status, SimplexStatus::Optimal);
        assert!((r.objective + 12.0).abs() < 1e-9);
        assert!((r.x[0] - 4.0).abs() < 1e-9);
        assert!((r.x[1] - 0.0).abs() < 1e-9);
        assert!(r.residual < 1e-9);
    }

    #[test]
    fn phase1_needed_for_equalities() {
        // min x + y s.t. x + y = 2, x - y = 0  ->  x = y = 1, obj 2.
        let lp = lp_from_dense(&[&[1.0, 1.0], &[1.0, -1.0]], &[1.0, 1.0], &[2.0, 0.0]);
        let r = solve_standard(&lp, SimplexOptions::default());
        assert_eq!(r.status, SimplexStatus::Optimal);
        assert!((r.objective - 2.0).abs() < 1e-9);
        assert!((r.x[0] - 1.0).abs() < 1e-9);
        assert!((r.x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        // x = 1 and x = 2 simultaneously.
        let lp = lp_from_dense(&[&[1.0], &[1.0]], &[0.0], &[1.0, 2.0]);
        let r = solve_standard(&lp, SimplexOptions::default());
        assert_eq!(r.status, SimplexStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x s.t. x - s = 0 (x can grow forever).
        let lp = lp_from_dense(&[&[1.0, -1.0]], &[-1.0, 0.0], &[0.0]);
        let r = solve_standard(&lp, SimplexOptions::default());
        assert_eq!(r.status, SimplexStatus::Unbounded);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple rows intersecting at the same vertex (degenerate).
        let lp = lp_from_dense(
            &[
                &[1.0, 1.0, 1.0, 0.0, 0.0],
                &[1.0, 0.0, 0.0, 1.0, 0.0],
                &[0.0, 1.0, 0.0, 0.0, 1.0],
            ],
            &[-1.0, -1.0, 0.0, 0.0, 0.0],
            &[1.0, 1.0, 1.0],
        );
        let r = solve_standard(&lp, SimplexOptions::default());
        assert_eq!(r.status, SimplexStatus::Optimal);
        assert!((r.objective + 1.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_rows_tolerated() {
        // Row 2 = 2 x row 1: artificial stays basic at zero on the
        // redundant row; solution still optimal.
        let lp = lp_from_dense(&[&[1.0, 1.0], &[2.0, 2.0]], &[1.0, 2.0], &[3.0, 6.0]);
        let r = solve_standard(&lp, SimplexOptions::default());
        assert_eq!(r.status, SimplexStatus::Optimal);
        assert!((r.objective - 3.0).abs() < 1e-9, "obj={}", r.objective);
        assert!(r.residual < 1e-8);
    }

    #[test]
    fn duals_satisfy_strong_duality() {
        // min c x, Ax = b: at optimum, y'b == objective and c - A'y >= 0.
        let lp = lp_from_dense(
            &[&[2.0, 1.0, 1.0, 0.0], &[1.0, 3.0, 0.0, 1.0]],
            &[-5.0, -4.0, 0.0, 0.0],
            &[8.0, 9.0],
        );
        let r = solve_standard(&lp, SimplexOptions::default());
        assert_eq!(r.status, SimplexStatus::Optimal);
        let yb: f64 = r.duals.iter().zip(&lp.rhs).map(|(y, b)| y * b).sum();
        assert!((yb - r.objective).abs() < 1e-8);
        for j in 0..lp.cols.ncols() {
            let red = lp.costs[j] - lp.cols.col_dot(j, &r.duals);
            assert!(red > -1e-7, "reduced cost {red} negative at optimum");
        }
    }

    /// A banded `min c·x, Ax + s = b` family sharing matrix and costs;
    /// members differ only in `b` — the MSM sibling pattern.
    fn banded_lp(rhs: &[f64]) -> StandardLp {
        let n = rhs.len();
        let mut bld = CscBuilder::new(n);
        for j in 0..n {
            let mut col = vec![(j, 1.0)];
            if j + 1 < n {
                col.push((j + 1, 0.4));
            }
            bld.push_col(&col);
        }
        for j in 0..n {
            bld.push_col(&[(j, 1.0)]);
        }
        let costs: Vec<f64> = (0..n)
            .map(|i| -((i % 5) as f64) - 0.5)
            .chain((0..n).map(|_| 0.0))
            .collect();
        StandardLp {
            cols: bld.finish(),
            costs,
            rhs: rhs.to_vec(),
        }
    }

    #[test]
    fn warm_start_on_identical_rhs_needs_no_pivots() {
        let rhs: Vec<f64> = (0..24).map(|i| 1.0 + (i % 4) as f64).collect();
        let lp = banded_lp(&rhs);
        let donor = solve_standard(&lp, SimplexOptions::default());
        assert_eq!(donor.status, SimplexStatus::Optimal);
        assert!(donor.iterations > 0, "donor solved without pivoting");
        let warm = solve_standard(
            &lp,
            SimplexOptions {
                start_basis: Some(donor.basis.clone()),
                ..SimplexOptions::default()
            },
        );
        assert_eq!(warm.status, SimplexStatus::Optimal);
        assert_eq!(warm.iterations, 0, "optimal basis re-priced from scratch");
        assert!((warm.objective - donor.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_start_matches_cold_optimum_on_sibling_rhs() {
        let rhs_a: Vec<f64> = (0..24).map(|i| 1.0 + (i % 4) as f64).collect();
        let rhs_b: Vec<f64> = (0..24).map(|i| 1.3 + (i % 3) as f64).collect();
        let donor = solve_standard(&banded_lp(&rhs_a), SimplexOptions::default());
        assert_eq!(donor.status, SimplexStatus::Optimal);
        let sibling = banded_lp(&rhs_b);
        let cold = solve_standard(&sibling, SimplexOptions::default());
        let warm = solve_standard(
            &sibling,
            SimplexOptions {
                start_basis: Some(donor.basis.clone()),
                ..SimplexOptions::default()
            },
        );
        assert_eq!(cold.status, SimplexStatus::Optimal);
        assert_eq!(warm.status, SimplexStatus::Optimal);
        assert!(
            (warm.objective - cold.objective).abs() < 1e-8,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        assert!(
            warm.iterations <= cold.iterations,
            "warm start pivoted more ({} > {})",
            warm.iterations,
            cold.iterations
        );
        for (a, b) in warm.x.iter().zip(&cold.x) {
            assert!((a - b).abs() < 1e-7, "solutions diverged: {a} vs {b}");
        }
    }

    #[test]
    fn mismatched_warm_basis_falls_back_to_cold() {
        // A basis from a differently-shaped LP must be ignored; the result
        // is bit-identical to the cold solve.
        let rhs: Vec<f64> = (0..12).map(|i| 1.0 + (i % 4) as f64).collect();
        let foreign = solve_standard(
            &banded_lp(&(0..30).map(|i| 1.0 + (i % 2) as f64).collect::<Vec<_>>()),
            SimplexOptions::default(),
        );
        let lp = banded_lp(&rhs);
        let cold = solve_standard(&lp, SimplexOptions::default());
        let warm = solve_standard(
            &lp,
            SimplexOptions {
                start_basis: Some(foreign.basis.clone()),
                ..SimplexOptions::default()
            },
        );
        assert_eq!(warm.status, cold.status);
        assert_eq!(warm.iterations, cold.iterations);
        for (a, b) in warm.x.iter().zip(&cold.x) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The banded LP with `extra` additional columns inserted *before* the
    /// slack block — the shape a dualized model takes when cut rows are
    /// appended to the primal.
    fn banded_lp_with_inserted(rhs: &[f64], extra: &[(Vec<(usize, f64)>, f64)]) -> StandardLp {
        let n = rhs.len();
        let mut bld = CscBuilder::new(n);
        for j in 0..n {
            let mut col = vec![(j, 1.0)];
            if j + 1 < n {
                col.push((j + 1, 0.4));
            }
            bld.push_col(&col);
        }
        let mut costs: Vec<f64> = (0..n).map(|i| -((i % 5) as f64) - 0.5).collect();
        for (col, cost) in extra {
            bld.push_col(col);
            costs.push(*cost);
        }
        for j in 0..n {
            bld.push_col(&[(j, 1.0)]);
            costs.push(0.0);
        }
        StandardLp {
            cols: bld.finish(),
            costs,
            rhs: rhs.to_vec(),
        }
    }

    #[test]
    fn primal_continue_after_column_insertion_matches_cold() {
        let rhs: Vec<f64> = (0..24).map(|i| 1.0 + (i % 4) as f64).collect();
        let n = rhs.len();
        let base = banded_lp_with_inserted(&rhs, &[]);
        let donor = solve_standard(&base, SimplexOptions::default());
        assert_eq!(donor.status, SimplexStatus::Optimal);

        // Insert two attractive columns before the slack block; the old
        // basis stays primal-feasible (rows and rhs unchanged) but is no
        // longer dual-feasible — exactly the cut-generation situation.
        let extra = vec![
            (vec![(3, 1.0), (7, 0.5)], -9.0),
            (vec![(11, 1.0), (12, 0.25)], -8.0),
        ];
        let grown = banded_lp_with_inserted(&rhs, &extra);
        let cold = solve_standard(&grown, SimplexOptions::default());
        assert_eq!(cold.status, SimplexStatus::Optimal);
        let warm = solve_standard(
            &grown,
            SimplexOptions {
                start_basis: Some(donor.basis.with_columns_inserted(n, extra.len())),
                warm_mode: WarmMode::PrimalContinue,
                ..SimplexOptions::default()
            },
        );
        assert_eq!(warm.status, SimplexStatus::Optimal);
        assert!(
            (warm.objective - cold.objective).abs() < 1e-9,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        assert!(
            warm.iterations < cold.iterations,
            "continuation did not save pivots ({} >= {})",
            warm.iterations,
            cold.iterations
        );
        // Under the dual-restart mode the same remapped basis is rejected
        // (not dual-feasible) and the solve falls back to cold bits.
        let fallback = solve_standard(
            &grown,
            SimplexOptions {
                start_basis: Some(donor.basis.with_columns_inserted(n, extra.len())),
                ..SimplexOptions::default()
            },
        );
        assert_eq!(fallback.iterations, cold.iterations);
        for (a, b) in fallback.x.iter().zip(&cold.x) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn column_insertion_remap_shifts_only_tail_entries() {
        let basis = Basis {
            rows: vec![Some(0), Some(4), None, Some(9)],
        };
        let shifted = basis.with_columns_inserted(4, 3);
        assert_eq!(shifted.rows, vec![Some(0), Some(7), None, Some(12)]);
        // Inserting zero columns is the identity.
        assert_eq!(basis.with_columns_inserted(2, 0), basis);
    }

    #[test]
    fn row_append_with_basic_slacks_resumes_primal() {
        // min -3x - 2y s.t. x + y + s1 = 4, x + 3y + s2 = 6; optimum x=4.
        let base = lp_from_dense(
            &[&[1.0, 1.0, 1.0, 0.0], &[1.0, 3.0, 0.0, 1.0]],
            &[-3.0, -2.0, 0.0, 0.0],
            &[4.0, 6.0],
        );
        let donor = solve_standard(&base, SimplexOptions::default());
        assert_eq!(donor.status, SimplexStatus::Optimal);
        // Append a non-binding cut x + s3 = 5 (old optimum satisfies it
        // slackly): the extended basis — old columns remapped past nothing,
        // new slack basic in the new row — restarts without phase 1.
        let grown = lp_from_dense(
            &[
                &[1.0, 1.0, 1.0, 0.0, 0.0],
                &[1.0, 3.0, 0.0, 1.0, 0.0],
                &[1.0, 0.0, 0.0, 0.0, 1.0],
            ],
            &[-3.0, -2.0, 0.0, 0.0, 0.0],
            &[4.0, 6.0, 5.0],
        );
        let warm = solve_standard(
            &grown,
            SimplexOptions {
                start_basis: Some(donor.basis.with_rows_appended(&[4])),
                warm_mode: WarmMode::PrimalContinue,
                ..SimplexOptions::default()
            },
        );
        assert_eq!(warm.status, SimplexStatus::Optimal);
        assert_eq!(warm.iterations, 0, "non-binding cut forced pivots");
        assert!((warm.objective + 12.0).abs() < 1e-9);
    }

    #[test]
    fn refactorization_keeps_accuracy() {
        // Force frequent refactorization on a chain problem and check the
        // residual stays tiny.
        let n = 30usize;
        let mut bld = CscBuilder::new(n);
        // x_i + x_{i+1}-style band + slacks.
        for j in 0..n {
            let mut col = vec![(j, 1.0)];
            if j + 1 < n {
                col.push((j + 1, 0.5));
            }
            bld.push_col(&col);
        }
        for j in 0..n {
            bld.push_col(&[(j, 1.0)]);
        }
        let costs: Vec<f64> = (0..n)
            .map(|i| -((i % 7) as f64) - 1.0)
            .chain((0..n).map(|_| 0.0))
            .collect();
        let rhs: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let lp = StandardLp {
            cols: bld.finish(),
            costs,
            rhs,
        };
        let opts = SimplexOptions {
            refactor_every: 3,
            ..SimplexOptions::default()
        };
        let r = solve_standard(&lp, opts);
        assert_eq!(r.status, SimplexStatus::Optimal);
        assert!(r.residual < 1e-9, "residual {}", r.residual);
    }
}
