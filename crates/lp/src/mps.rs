//! Free-format MPS serialization for [`Model`].
//!
//! MPS is the lingua franca of LP solvers; being able to dump the optimal
//! mechanism's program and feed it to an external solver (or read one back)
//! is invaluable for debugging and for validating this crate against
//! reference implementations. Supported subset (everything [`Model`] can
//! express):
//!
//! * `OBJSENSE` (`MAX`/`MIN`, default `MIN`),
//! * `ROWS` (`N`/`L`/`G`/`E`),
//! * `COLUMNS`, `RHS`,
//! * `BOUNDS` with `FR` (free variables; everything else defaults to `x ≥ 0`).

use crate::model::{Model, Op, Sense, VarDomain};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serialize a model to free-format MPS.
///
/// Variables are named `X0, X1, …` in index order and rows `R0, R1, …`; the
/// objective row is `COST`.
pub fn to_mps(model: &Model, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "NAME {name}");
    if model.sense() == Sense::Maximize {
        let _ = writeln!(out, "OBJSENSE\n    MAX");
    }
    let _ = writeln!(out, "ROWS\n N  COST");
    for (i, (_, op, _)) in model.rows_for_mps().iter().enumerate() {
        let tag = match op {
            Op::Le => 'L',
            Op::Ge => 'G',
            Op::Eq => 'E',
        };
        let _ = writeln!(out, " {tag}  R{i}");
    }
    // COLUMNS: entries grouped per variable.
    let mut per_var: Vec<Vec<(usize, f64)>> = vec![Vec::new(); model.num_vars()];
    for (ri, (entries, _, _)) in model.rows_for_mps().iter().enumerate() {
        for &(v, c) in entries {
            per_var[v].push((ri, c));
        }
    }
    let _ = writeln!(out, "COLUMNS");
    for v in 0..model.num_vars() {
        let c = model.objective_of(v);
        if c != 0.0 {
            let _ = writeln!(out, "    X{v}  COST  {c}");
        }
        for &(ri, coef) in &per_var[v] {
            let _ = writeln!(out, "    X{v}  R{ri}  {coef}");
        }
    }
    let _ = writeln!(out, "RHS");
    for (ri, (_, _, rhs)) in model.rows_for_mps().iter().enumerate() {
        if *rhs != 0.0 {
            let _ = writeln!(out, "    RHS  R{ri}  {rhs}");
        }
    }
    let frees: Vec<usize> = (0..model.num_vars())
        .filter(|&v| model.domain_of(v) == VarDomain::Free)
        .collect();
    if !frees.is_empty() {
        let _ = writeln!(out, "BOUNDS");
        for v in frees {
            let _ = writeln!(out, " FR BND  X{v}");
        }
    }
    let _ = writeln!(out, "ENDATA");
    out
}

/// Errors raised while parsing MPS text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpsParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for MpsParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MPS line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MpsParseError {}

/// Parse free-format MPS text into a [`Model`].
///
/// Row/variable order follows first appearance; the objective row is the
/// (single) `N` row.
pub fn from_mps(text: &str) -> Result<Model, MpsParseError> {
    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        None,
        ObjSense,
        Rows,
        Columns,
        Rhs,
        Bounds,
        Done,
    }
    let err = |line: usize, message: &str| MpsParseError {
        line,
        message: message.into(),
    };

    let mut sense = Sense::Minimize;
    let mut obj_row: Option<String> = None;
    // name -> (op); insertion order tracked separately.
    let mut row_ops: HashMap<String, Op> = HashMap::new();
    let mut row_order: Vec<String> = Vec::new();
    let mut var_order: Vec<String> = Vec::new();
    let mut var_ids: HashMap<String, usize> = HashMap::new();
    let mut obj_coeffs: HashMap<usize, f64> = HashMap::new();
    let mut entries: HashMap<String, Vec<(usize, f64)>> = HashMap::new();
    let mut rhs: HashMap<String, f64> = HashMap::new();
    let mut free_vars: Vec<usize> = Vec::new();

    let mut section = Section::None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let ln = lineno + 1;
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        // Section headers start in column 1 of the raw line.
        if !raw.starts_with(' ') && !raw.starts_with('\t') {
            let mut it = line.split_whitespace();
            match it.next().unwrap_or("") {
                "NAME" => continue,
                "OBJSENSE" => {
                    section = Section::ObjSense;
                    continue;
                }
                "ROWS" => {
                    section = Section::Rows;
                    continue;
                }
                "COLUMNS" => {
                    section = Section::Columns;
                    continue;
                }
                "RHS" => {
                    section = Section::Rhs;
                    continue;
                }
                "BOUNDS" => {
                    section = Section::Bounds;
                    continue;
                }
                "RANGES" => return Err(err(ln, "RANGES section not supported")),
                "ENDATA" => {
                    section = Section::Done;
                    break;
                }
                other => return Err(err(ln, &format!("unknown section {other}"))),
            }
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match section {
            Section::ObjSense => {
                sense = match fields[0] {
                    "MAX" | "MAXIMIZE" => Sense::Maximize,
                    "MIN" | "MINIMIZE" => Sense::Minimize,
                    other => return Err(err(ln, &format!("bad OBJSENSE {other}"))),
                };
            }
            Section::Rows => {
                if fields.len() != 2 {
                    return Err(err(ln, "ROWS lines need `<type> <name>`"));
                }
                let name = fields[1].to_string();
                match fields[0] {
                    "N" => {
                        if obj_row.replace(name).is_some() {
                            return Err(err(ln, "multiple N rows"));
                        }
                    }
                    tag => {
                        let op = match tag {
                            "L" => Op::Le,
                            "G" => Op::Ge,
                            "E" => Op::Eq,
                            other => return Err(err(ln, &format!("bad row type {other}"))),
                        };
                        row_ops.insert(name.clone(), op);
                        row_order.push(name);
                    }
                }
            }
            Section::Columns => {
                // `<var> <row> <val> [<row> <val>]`
                if fields.len() != 3 && fields.len() != 5 {
                    return Err(err(ln, "COLUMNS lines need 3 or 5 fields"));
                }
                let vname = fields[0].to_string();
                let vid = *var_ids.entry(vname.clone()).or_insert_with(|| {
                    var_order.push(vname);
                    var_order.len() - 1
                });
                for pair in fields[1..].chunks(2) {
                    let row = pair[0];
                    let val: f64 = pair[1]
                        .parse()
                        .map_err(|_| err(ln, &format!("bad number {}", pair[1])))?;
                    if Some(row) == obj_row.as_deref() {
                        *obj_coeffs.entry(vid).or_insert(0.0) += val;
                    } else if row_ops.contains_key(row) {
                        entries.entry(row.to_string()).or_default().push((vid, val));
                    } else {
                        return Err(err(ln, &format!("unknown row {row}")));
                    }
                }
            }
            Section::Rhs => {
                if fields.len() != 3 && fields.len() != 5 {
                    return Err(err(ln, "RHS lines need 3 or 5 fields"));
                }
                for pair in fields[1..].chunks(2) {
                    let row = pair[0];
                    let val: f64 = pair[1]
                        .parse()
                        .map_err(|_| err(ln, &format!("bad number {}", pair[1])))?;
                    if !row_ops.contains_key(row) {
                        return Err(err(ln, &format!("unknown RHS row {row}")));
                    }
                    rhs.insert(row.to_string(), val);
                }
            }
            Section::Bounds => {
                if fields.len() < 3 {
                    return Err(err(ln, "BOUNDS lines need `<type> <set> <var>`"));
                }
                match fields[0] {
                    "FR" => {
                        let v = var_ids
                            .get(fields[2])
                            .ok_or_else(|| err(ln, &format!("unknown variable {}", fields[2])))?;
                        free_vars.push(*v);
                    }
                    other => return Err(err(ln, &format!("bound type {other} not supported"))),
                }
            }
            Section::None | Section::Done => return Err(err(ln, "data before any section header")),
        }
    }
    if section != Section::Done {
        return Err(err(text.lines().count(), "missing ENDATA"));
    }

    let mut model = Model::new(sense);
    for (vid, _) in var_order.iter().enumerate() {
        let c = obj_coeffs.get(&vid).copied().unwrap_or(0.0);
        if free_vars.contains(&vid) {
            model.add_var_free(c);
        } else {
            model.add_var(c);
        }
    }
    for rname in &row_order {
        let op = row_ops[rname];
        let row_entries = entries.get(rname).cloned().unwrap_or_default();
        model.add_row(&row_entries, op, rhs.get(rname).copied().unwrap_or(0.0));
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SolveVia;

    fn sample_model() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(3.0);
        let y = m.add_var(5.0);
        let z = m.add_var_free(-1.0);
        m.add_row(&[(x, 1.0), (z, 2.0)], Op::Le, 4.0);
        m.add_row(&[(y, 2.0)], Op::Le, 12.0);
        m.add_row(&[(x, 3.0), (y, 2.0), (z, -1.0)], Op::Ge, 6.0);
        m.add_row(&[(z, 1.0)], Op::Eq, -1.0);
        m
    }

    #[test]
    fn roundtrip_preserves_solutions() {
        let original = sample_model();
        let text = to_mps(&original, "sample");
        let parsed = from_mps(&text).expect("parse back");
        assert_eq!(parsed.num_vars(), original.num_vars());
        assert_eq!(parsed.num_rows(), original.num_rows());
        let a = original.solve(SolveVia::Primal).unwrap();
        let b = parsed.solve(SolveVia::Primal).unwrap();
        assert!((a.objective - b.objective).abs() < 1e-9);
        for (u, v) in a.values.iter().zip(&b.values) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn objsense_header_emitted_only_for_max() {
        let text = to_mps(&sample_model(), "s");
        assert!(text.contains("OBJSENSE"));
        let mut min_model = Model::new(Sense::Minimize);
        min_model.add_var(1.0);
        assert!(!to_mps(&min_model, "m").contains("OBJSENSE"));
    }

    #[test]
    fn parses_handwritten_mps() {
        let text = "\
NAME test
ROWS
 N  COST
 L  LIM1
 G  LIM2
COLUMNS
    A  COST  1.0  LIM1  1.0
    B  COST  2.0  LIM1  1.0
    B  LIM2  1.0
RHS
    RHS  LIM1  10.0  LIM2  2.0
ENDATA
";
        let m = from_mps(text).unwrap();
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_rows(), 2);
        let sol = m.solve(SolveVia::Primal).unwrap();
        // min A + 2B s.t. A + B <= 10, B >= 2 -> A=0, B=2.
        assert!((sol.objective - 4.0).abs() < 1e-9);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "NAME x\nROWS\n Q  R0\nENDATA\n";
        let e = from_mps(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("row type"));

        let noend = "NAME x\nROWS\n N COST\n";
        assert!(from_mps(noend).unwrap_err().message.contains("ENDATA"));
    }

    #[test]
    fn unsupported_sections_rejected() {
        let text = "NAME x\nROWS\n N COST\nRANGES\nENDATA\n";
        assert!(from_mps(text).unwrap_err().message.contains("RANGES"));
    }
}
