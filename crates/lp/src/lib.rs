//! A from-scratch linear-programming solver, sized for the optimal
//! geo-indistinguishability mechanism.
//!
//! The OPT mechanism of Bordenabe et al. (used as the per-level building
//! block of the paper's multi-step mechanism) is a linear program with
//! `n²` variables and `n + n²(n−1)` constraints for `n` candidate locations —
//! cubic in `n`. The paper solves it with Gurobi's dual simplex; this crate
//! provides the equivalent capability without external dependencies:
//!
//! * [`model`] — a small modelling API ([`Model`]): non-negative or free
//!   variables, `≤ / = / ≥` rows, min/max objectives.
//! * [`simplex`] — a revised primal simplex on computational standard form
//!   with an explicitly maintained (periodically refactorized) basis
//!   inverse, crash slack basis, two phases, Dantzig pricing with Bland
//!   anti-cycling fallback.
//! * [`dual`] — mechanical dualization. The OPT LP is *row-heavy*
//!   (`O(n³)` rows, `O(n²)` columns); its dual is column-heavy, which is the
//!   shape the revised simplex wants (basis size = row count). Solving the
//!   dual and reading the primal solution off the row duals is exactly how a
//!   commercial dual-simplex run behaves on the original problem.
//! * [`presolve`] — empty-row/column elimination and singleton-equality
//!   substitution ahead of the simplex.
//! * [`mps`] — free-format MPS read/write for debugging against external
//!   solvers.
//! * [`tableau`] — a naive dense two-phase tableau simplex kept as a test
//!   oracle.
//! * [`sparse`] / [`dense`] — CSC matrices and a dense LU with partial
//!   pivoting.
//!
//! ```
//! use geoind_lp::model::{Model, Sense, Op, SolveVia};
//!
//! // max 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x,y >= 0
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var(3.0);
//! let y = m.add_var(2.0);
//! m.add_row(&[(x, 1.0), (y, 1.0)], Op::Le, 4.0);
//! m.add_row(&[(x, 1.0), (y, 3.0)], Op::Le, 6.0);
//! let sol = m.solve(SolveVia::Primal).unwrap();
//! assert!((sol.objective - 12.0).abs() < 1e-9);
//! assert!((sol.values[x] - 4.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
// Index-based loops over parallel arrays are the clearest style for the
// numeric kernels here; the iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
// Test reference constants keep full printed precision from their sources.
#![allow(clippy::excessive_precision)]
// Library code reports failures as typed `LpError`s; panicking unwraps are
// confined to tests. (`expect` with an invariant message remains allowed.)
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod dense;
pub mod dual;
pub mod model;
pub mod mps;
pub mod presolve;
pub mod simplex;
pub mod sparse;
pub mod tableau;

pub use dual::remap_dual_basis_after_le_append;
pub use model::{Model, Op, Sense, Solution, SolveVia, VarDomain};
pub use simplex::{Basis, Pricing, SimplexOptions, SimplexStatus, WarmMode};
pub use sparse::CscMatrix;

/// Errors surfaced by the solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// No feasible point exists (phase-1 optimum above tolerance).
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration limit was hit before convergence.
    IterationLimit,
    /// The basis became numerically singular, or a nominally optimal
    /// solution failed the primal-residual quality check.
    SingularBasis,
    /// The model is malformed (e.g. a row references a missing variable).
    BadModel(String),
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "infeasible"),
            LpError::Unbounded => write!(f, "unbounded"),
            LpError::IterationLimit => write!(f, "iteration limit reached"),
            LpError::SingularBasis => {
                write!(f, "numerically singular basis (solution not certified)")
            }
            LpError::BadModel(m) => write!(f, "bad model: {m}"),
        }
    }
}

impl std::error::Error for LpError {}
