//! Naive dense two-phase tableau simplex — a slow, transparent oracle.
//!
//! This solver exists purely to cross-check the revised simplex in tests
//! (including property tests over random LPs). It uses Bland's rule
//! throughout, which guarantees termination at the cost of speed, and dense
//! `O(m·n)` tableau updates.

use crate::model::{Op, Sense};
use crate::LpError;

/// Solve `min/max c·x  s.t.  rows, x ≥ 0` with a dense tableau.
///
/// Returns `(objective, x)`.
pub fn solve_dense(
    sense: Sense,
    costs: &[f64],
    rows: &[(Vec<f64>, Op, f64)],
) -> Result<(f64, Vec<f64>), LpError> {
    let n = costs.len();
    let m = rows.len();
    for (coefs, _, _) in rows {
        assert_eq!(coefs.len(), n, "row width mismatch");
    }
    let sense_sign = if sense == Sense::Maximize { -1.0 } else { 1.0 };

    // Count slacks and artificials.
    let mut num_slack = 0;
    for (_, op, _) in rows {
        if *op != Op::Eq {
            num_slack += 1;
        }
    }
    // Layout: [structural | slack | artificial | rhs].
    let total = n + num_slack + m;
    let width = total + 1;
    let mut t = vec![vec![0.0f64; width]; m];
    let mut basis = vec![0usize; m];
    let mut slack_at = 0usize;
    for (i, (coefs, op, rhs)) in rows.iter().enumerate() {
        let flip = if *rhs < 0.0 { -1.0 } else { 1.0 };
        for j in 0..n {
            t[i][j] = coefs[j] * flip;
        }
        if *op != Op::Eq {
            let s = match op {
                Op::Le => 1.0,
                Op::Ge => -1.0,
                Op::Eq => unreachable!(),
            };
            t[i][n + slack_at] = s * flip;
            slack_at += 1;
        }
        // Artificial for every row keeps the code simple.
        t[i][n + num_slack + i] = 1.0;
        basis[i] = n + num_slack + i;
        t[i][total] = rhs * flip;
    }

    // Phase 1: minimize sum of artificials.
    let mut obj1 = vec![0.0f64; width];
    for i in 0..m {
        for (j, o) in obj1.iter_mut().enumerate() {
            *o -= t[i][j]; // reduced costs under the artificial basis
        }
    }
    // Objective coefficients for artificials are 1; after pricing out the
    // basis they are 0 in obj1 already (−Σ rows + 1 each = 0 only at the
    // artificial columns): fix them explicitly.
    for i in 0..m {
        obj1[n + num_slack + i] = 0.0;
    }
    run(&mut t, &mut obj1, &mut basis, total, |j| j < n + num_slack)?;
    let phase1_obj = -obj1[total];
    if phase1_obj > 1e-7 {
        return Err(LpError::Infeasible);
    }

    // Phase 2: real costs, artificial columns barred from entering.
    let mut obj2 = vec![0.0f64; width];
    for j in 0..n {
        obj2[j] = sense_sign * costs[j];
    }
    // Price out the current basis.
    for i in 0..m {
        let b = basis[i];
        let cb = if b < n { sense_sign * costs[b] } else { 0.0 };
        if cb != 0.0 {
            for j in 0..width {
                obj2[j] -= cb * t[i][j];
            }
        }
    }
    run(&mut t, &mut obj2, &mut basis, total, |j| j < n + num_slack)?;

    let mut x = vec![0.0f64; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = t[i][total];
        }
    }
    let objective: f64 = x.iter().zip(costs).map(|(v, c)| v * c).sum();
    Ok((objective, x))
}

/// Bland-rule tableau iteration until optimal.
fn run(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    total: usize,
    may_enter: impl Fn(usize) -> bool,
) -> Result<(), LpError> {
    let m = t.len();
    for _ in 0..200_000 {
        // Bland: smallest improving column index.
        let Some(q) = (0..total).find(|&j| may_enter(j) && obj[j] < -1e-9) else {
            return Ok(());
        };
        // Bland leaving rule: min ratio, smallest basis index tie-break.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if t[i][q] > 1e-9 {
                let ratio = t[i][total] / t[i][q];
                if ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12 && leave.is_none_or(|l| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(r) = leave else {
            return Err(LpError::Unbounded);
        };
        // Pivot on (r, q).
        let piv = t[r][q];
        for v in t[r].iter_mut() {
            *v /= piv;
        }
        for i in 0..m {
            if i != r && t[i][q].abs() > 0.0 {
                let f = t[i][q];
                for j in 0..=total {
                    t[i][j] -= f * t[r][j];
                }
            }
        }
        let f = obj[q];
        if f != 0.0 {
            for j in 0..=total {
                obj[j] -= f * t[r][j];
            }
        }
        basis[r] = q;
    }
    Err(LpError::IterationLimit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_max() {
        let (obj, x) = solve_dense(
            Sense::Maximize,
            &[3.0, 5.0],
            &[
                (vec![1.0, 0.0], Op::Le, 4.0),
                (vec![0.0, 2.0], Op::Le, 12.0),
                (vec![3.0, 2.0], Op::Le, 18.0),
            ],
        )
        .unwrap();
        assert!((obj - 36.0).abs() < 1e-9);
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn equality_min() {
        let (obj, x) = solve_dense(
            Sense::Minimize,
            &[2.0, 3.0],
            &[
                (vec![1.0, 1.0], Op::Eq, 10.0),
                (vec![1.0, -1.0], Op::Eq, 2.0),
            ],
        )
        .unwrap();
        assert!((obj - 24.0).abs() < 1e-8);
        assert!((x[0] - 6.0).abs() < 1e-8);
    }

    #[test]
    fn infeasible() {
        let r = solve_dense(
            Sense::Minimize,
            &[1.0],
            &[(vec![1.0], Op::Ge, 5.0), (vec![1.0], Op::Le, 2.0)],
        );
        assert_eq!(r.unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded() {
        let r = solve_dense(Sense::Maximize, &[1.0], &[(vec![-1.0], Op::Le, 1.0)]);
        assert_eq!(r.unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs() {
        // min x + y s.t. -x - y <= -3  (i.e. x + y >= 3)
        let (obj, _) = solve_dense(
            Sense::Minimize,
            &[1.0, 1.0],
            &[(vec![-1.0, -1.0], Op::Le, -3.0)],
        )
        .unwrap();
        assert!((obj - 3.0).abs() < 1e-9);
    }
}
