//! User-facing LP modelling API.
//!
//! A [`Model`] owns variables (non-negative or free), rows (`≤ / = / ≥`),
//! and a min/max objective; [`Model::solve`] converts to computational
//! standard form, runs the revised simplex (directly or on the dual, see
//! [`SolveVia`]), and maps the answer back.

use crate::dual::solve_via_dual;
use crate::simplex::{solve_standard, Basis, SimplexOptions, SimplexStatus, StandardLp};
use crate::sparse::CscBuilder;
use crate::LpError;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Row comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

/// Variable domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarDomain {
    /// `x ≥ 0` (the default).
    NonNeg,
    /// Unrestricted in sign.
    Free,
}

/// Which formulation the simplex actually runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveVia {
    /// Pick automatically: row-heavy models go through the dual.
    Auto,
    /// Solve the model as given.
    Primal,
    /// Solve the dual and recover the primal solution from its row duals.
    Dual,
}

#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub entries: Vec<(usize, f64)>,
    pub op: Op,
    pub rhs: f64,
}

/// Row data in `(entries, op, rhs)` tuple form, shared by presolve and MPS.
pub(crate) type RowTuple = (Vec<(usize, f64)>, Op, f64);

/// A linear program under construction.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) obj: Vec<f64>,
    pub(crate) domains: Vec<VarDomain>,
    pub(crate) rows: Vec<Row>,
}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Objective value in the model's own sense.
    pub objective: f64,
    /// One value per variable, in `add_var` order.
    pub values: Vec<f64>,
    /// Row duals `y` with the convention: `objective = Σ yᵢ·rhsᵢ` and, for
    /// every non-negative variable `j`, `c_j − Σᵢ yᵢ·a_{ij}` is `≥ 0`
    /// (Minimize) or `≤ 0` (Maximize); exactly 0 for free variables.
    pub duals: Vec<f64>,
    /// Simplex pivots used.
    pub iterations: usize,
    /// `‖Ax − b‖∞` self-check from the engine (primal feasibility).
    pub residual: f64,
    /// Worst reduced-cost violation at the exit basis (dual feasibility),
    /// as a non-negative magnitude. On the dual solve path the two
    /// residuals are swapped so both always describe *this* model's
    /// primal/dual feasibility.
    pub dual_residual: f64,
    /// The engine's final basis, in the standard-form space of whatever
    /// formulation actually ran (the dual's on the [`SolveVia::Dual`]
    /// path). Feed it back through [`SimplexOptions::start_basis`] to
    /// warm-start a solve of a structurally identical model taken through
    /// the same path; on any mismatch the engine cold-starts.
    pub basis: Basis,
}

impl Model {
    /// Start an empty model.
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            obj: Vec::new(),
            domains: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Add a non-negative variable with the given objective coefficient;
    /// returns its index.
    pub fn add_var(&mut self, obj: f64) -> usize {
        self.obj.push(obj);
        self.domains.push(VarDomain::NonNeg);
        self.obj.len() - 1
    }

    /// Add a sign-unrestricted variable; returns its index.
    pub fn add_var_free(&mut self, obj: f64) -> usize {
        self.obj.push(obj);
        self.domains.push(VarDomain::Free);
        self.obj.len() - 1
    }

    /// Add a constraint row `Σ coef·x[var] op rhs`.
    ///
    /// # Panics
    /// Panics if an entry references a variable that does not exist.
    pub fn add_row(&mut self, entries: &[(usize, f64)], op: Op, rhs: f64) {
        for &(v, _) in entries {
            assert!(v < self.obj.len(), "row references unknown variable {v}");
        }
        self.rows.push(Row {
            entries: entries.to_vec(),
            op,
            rhs,
        });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Sense accessor.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Objective coefficient of a variable.
    pub fn objective_of(&self, var: usize) -> f64 {
        self.obj[var]
    }

    /// Domain of a variable.
    pub fn domain_of(&self, var: usize) -> VarDomain {
        self.domains[var]
    }

    /// Clone the rows in presolve-friendly form.
    pub(crate) fn rows_for_presolve(&self) -> Vec<RowTuple> {
        self.rows
            .iter()
            .map(|r| (r.entries.clone(), r.op, r.rhs))
            .collect()
    }

    /// Clone the rows for MPS serialization (same shape as presolve's view).
    pub(crate) fn rows_for_mps(&self) -> Vec<RowTuple> {
        self.rows_for_presolve()
    }

    /// Solve with default simplex options.
    pub fn solve(&self, via: SolveVia) -> Result<Solution, LpError> {
        self.solve_with(via, SimplexOptions::default())
    }

    /// Solve with explicit simplex options.
    pub fn solve_with(&self, via: SolveVia, opts: SimplexOptions) -> Result<Solution, LpError> {
        if self.obj.is_empty() {
            return Err(LpError::BadModel("model has no variables".into()));
        }
        let via = match via {
            SolveVia::Auto => {
                if self.rows.len() > 2 * self.obj.len().max(16) {
                    SolveVia::Dual
                } else {
                    SolveVia::Primal
                }
            }
            v => v,
        };
        match via {
            SolveVia::Primal => self.solve_primal(opts),
            SolveVia::Dual => solve_via_dual(self, opts),
            SolveVia::Auto => unreachable!(),
        }
    }

    /// Direct path: standard form + revised simplex.
    fn solve_primal(&self, opts: SimplexOptions) -> Result<Solution, LpError> {
        let (lp, map) = self.to_standard();
        let res = solve_standard(&lp, opts);
        match res.status {
            SimplexStatus::Optimal => {}
            SimplexStatus::Infeasible => return Err(LpError::Infeasible),
            SimplexStatus::Unbounded => return Err(LpError::Unbounded),
            SimplexStatus::IterationLimit => return Err(LpError::IterationLimit),
            SimplexStatus::SingularBasis => return Err(LpError::SingularBasis),
        }
        // Map core solution back to user variables.
        let mut values = vec![0.0; self.num_vars()];
        for (j, v) in values.iter_mut().enumerate() {
            *v = match map.var_cols[j] {
                (p, None) => res.x[p],
                (p, Some(n)) => res.x[p] - res.x[n],
            };
        }
        let sense_sign = if self.sense == Sense::Maximize {
            -1.0
        } else {
            1.0
        };
        let objective = sense_sign * res.objective;
        let duals: Vec<f64> = map
            .row_signs
            .iter()
            .enumerate()
            .map(|(i, &s)| sense_sign * s * res.duals[i])
            .collect();
        Ok(Solution {
            objective,
            values,
            duals,
            iterations: res.iterations,
            residual: res.residual,
            dual_residual: res.dual_residual,
            basis: res.basis,
        })
    }

    /// Convert to computational standard form (min, `Ax = b`, `b ≥ 0`).
    pub(crate) fn to_standard(&self) -> (StandardLp, StandardMap) {
        let nrows = self.rows.len();
        let sense_sign = if self.sense == Sense::Maximize {
            -1.0
        } else {
            1.0
        };
        // Row flip signs so b >= 0.
        let row_signs: Vec<f64> = self
            .rows
            .iter()
            .map(|r| if r.rhs < 0.0 { -1.0 } else { 1.0 })
            .collect();

        // Per-variable row lists.
        let mut var_entries: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.num_vars()];
        for (i, row) in self.rows.iter().enumerate() {
            for &(v, c) in &row.entries {
                var_entries[v].push((i, c * row_signs[i]));
            }
        }

        let mut bld = CscBuilder::new(nrows);
        let mut costs = Vec::new();
        let mut var_cols = Vec::with_capacity(self.num_vars());
        for j in 0..self.num_vars() {
            let pos = costs.len();
            bld.push_col(&var_entries[j]);
            costs.push(sense_sign * self.obj[j]);
            match self.domains[j] {
                VarDomain::NonNeg => var_cols.push((pos, None)),
                VarDomain::Free => {
                    let neg: Vec<(usize, f64)> =
                        var_entries[j].iter().map(|&(r, c)| (r, -c)).collect();
                    bld.push_col(&neg);
                    costs.push(-sense_sign * self.obj[j]);
                    var_cols.push((pos, Some(pos + 1)));
                }
            }
        }
        // Slack / surplus columns.
        for (i, row) in self.rows.iter().enumerate() {
            let coef = match row.op {
                Op::Le => 1.0,
                Op::Ge => -1.0,
                Op::Eq => continue,
            };
            bld.push_col(&[(i, coef * row_signs[i])]);
            costs.push(0.0);
        }
        let rhs: Vec<f64> = self
            .rows
            .iter()
            .zip(&row_signs)
            .map(|(r, &s)| r.rhs * s)
            .collect();
        (
            StandardLp {
                cols: bld.finish(),
                costs,
                rhs,
            },
            StandardMap {
                var_cols,
                row_signs,
            },
        )
    }
}

/// Book-keeping to map a [`StandardLp`] solution back to [`Model`] space.
#[derive(Debug, Clone)]
pub(crate) struct StandardMap {
    /// Per user variable: (positive column, optional negative column).
    pub var_cols: Vec<(usize, Option<usize>)>,
    /// ±1 per row (−1 where the row was negated to make `b ≥ 0`).
    pub row_signs: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maximize_roundtrip() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(3.0);
        let y = m.add_var(5.0);
        m.add_row(&[(x, 1.0)], Op::Le, 4.0);
        m.add_row(&[(y, 2.0)], Op::Le, 12.0);
        m.add_row(&[(x, 3.0), (y, 2.0)], Op::Le, 18.0);
        let s = m.solve(SolveVia::Primal).unwrap();
        assert!((s.objective - 36.0).abs() < 1e-9);
        assert!((s.values[x] - 2.0).abs() < 1e-9);
        assert!((s.values[y] - 6.0).abs() < 1e-9);
        // Duals: known y = (0, 3/2, 1).
        assert!((s.duals[0] - 0.0).abs() < 1e-9);
        assert!((s.duals[1] - 1.5).abs() < 1e-9);
        assert!((s.duals[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn minimize_with_ge_rows() {
        // Classic diet-style LP: min 0.6x + 0.35y
        // s.t. 5x + 7y >= 8, 4x + 2y >= 15, x,y >= 0.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.6);
        let y = m.add_var(0.35);
        m.add_row(&[(x, 5.0), (y, 7.0)], Op::Ge, 8.0);
        m.add_row(&[(x, 4.0), (y, 2.0)], Op::Ge, 15.0);
        let s = m.solve(SolveVia::Primal).unwrap();
        // Optimum at x = 3.75, y = 0 (second row binds).
        assert!((s.values[x] - 3.75).abs() < 1e-8);
        assert!(s.values[y].abs() < 1e-8);
        assert!((s.objective - 2.25).abs() < 1e-8);
    }

    #[test]
    fn negative_rhs_rows_flip() {
        // x - y <= -1 with min x + y  =>  y >= x + 1, optimum (0, 1).
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(1.0);
        let y = m.add_var(1.0);
        m.add_row(&[(x, 1.0), (y, -1.0)], Op::Le, -1.0);
        let s = m.solve(SolveVia::Primal).unwrap();
        assert!(s.values[x].abs() < 1e-9);
        assert!((s.values[y] - 1.0).abs() < 1e-9);
        assert!((s.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn free_variable_goes_negative() {
        // min x s.t. x >= -5 with x free  =>  x = -5.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var_free(1.0);
        m.add_row(&[(x, 1.0)], Op::Ge, -5.0);
        let s = m.solve(SolveVia::Primal).unwrap();
        assert!((s.values[x] + 5.0).abs() < 1e-9);
    }

    #[test]
    fn equality_rows() {
        // min 2x + 3y s.t. x + y = 10, x - y = 2  =>  x = 6, y = 4.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(2.0);
        let y = m.add_var(3.0);
        m.add_row(&[(x, 1.0), (y, 1.0)], Op::Eq, 10.0);
        m.add_row(&[(x, 1.0), (y, -1.0)], Op::Eq, 2.0);
        let s = m.solve(SolveVia::Primal).unwrap();
        assert!((s.values[x] - 6.0).abs() < 1e-8);
        assert!((s.values[y] - 4.0).abs() < 1e-8);
        assert!((s.objective - 24.0).abs() < 1e-8);
    }

    #[test]
    fn infeasible_model_errors() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(1.0);
        m.add_row(&[(x, 1.0)], Op::Ge, 5.0);
        m.add_row(&[(x, 1.0)], Op::Le, 2.0);
        assert_eq!(m.solve(SolveVia::Primal).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_model_errors() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(1.0);
        m.add_row(&[(x, -1.0)], Op::Le, 0.0);
        assert_eq!(m.solve(SolveVia::Primal).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn empty_model_is_bad() {
        let m = Model::new(Sense::Minimize);
        assert!(matches!(
            m.solve(SolveVia::Primal),
            Err(LpError::BadModel(_))
        ));
    }

    #[test]
    fn duals_price_out_binding_rows_min() {
        // min x + 2y s.t. x + y >= 4, y <= 10.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(1.0);
        let y = m.add_var(2.0);
        m.add_row(&[(x, 1.0), (y, 1.0)], Op::Ge, 4.0);
        m.add_row(&[(y, 1.0)], Op::Le, 10.0);
        let s = m.solve(SolveVia::Primal).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-9);
        // y'b must equal the objective.
        let yb = s.duals[0] * 4.0 + s.duals[1] * 10.0;
        assert!((yb - s.objective).abs() < 1e-8);
        // Ge row in a min problem carries a non-negative dual.
        assert!(s.duals[0] >= -1e-9);
        // Non-binding Le row has zero dual.
        assert!(s.duals[1].abs() < 1e-9);
    }
}
