//! Compressed-sparse-column matrices.
//!
//! The simplex engine only ever needs *column* access (entering-column
//! FTRAN, reduced-cost pricing), so CSC is the single storage format.

/// An immutable sparse matrix in compressed-sparse-column layout.
#[derive(Debug, Clone, Default)]
pub struct CscMatrix {
    nrows: usize,
    /// `col_ptr[j]..col_ptr[j+1]` indexes the entries of column `j`.
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

/// Incremental column-by-column builder for [`CscMatrix`].
#[derive(Debug, Clone)]
pub struct CscBuilder {
    nrows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CscBuilder {
    /// Start a builder for a matrix with `nrows` rows.
    pub fn new(nrows: usize) -> Self {
        assert!(
            nrows <= u32::MAX as usize,
            "row count exceeds u32 index space"
        );
        Self {
            nrows,
            col_ptr: vec![0],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Reserve space for an expected number of nonzeros.
    pub fn reserve(&mut self, nnz: usize) {
        self.row_idx.reserve(nnz);
        self.values.reserve(nnz);
    }

    /// Append one column given `(row, value)` entries. Zero values are
    /// dropped; duplicate rows within a column are summed.
    ///
    /// # Panics
    /// Panics if a row index is out of range.
    pub fn push_col(&mut self, entries: &[(usize, f64)]) {
        let start = self.row_idx.len();
        for &(r, v) in entries {
            assert!(r < self.nrows, "row {r} out of range ({} rows)", self.nrows);
            if v != 0.0 {
                self.row_idx.push(r as u32);
                self.values.push(v);
            }
        }
        // Sort the freshly appended slice by row and merge duplicates.
        let slice_len = self.row_idx.len() - start;
        if slice_len > 1 {
            let mut pairs: Vec<(u32, f64)> = (start..self.row_idx.len())
                .map(|i| (self.row_idx[i], self.values[i]))
                .collect();
            pairs.sort_by_key(|p| p.0);
            self.row_idx.truncate(start);
            self.values.truncate(start);
            for (r, v) in pairs {
                if self.row_idx.len() > start && self.row_idx.last() == Some(&r) {
                    if let Some(last_v) = self.values.last_mut() {
                        *last_v += v;
                    }
                    continue;
                }
                self.row_idx.push(r);
                self.values.push(v);
            }
        }
        self.col_ptr.push(self.row_idx.len());
    }

    /// Finish building.
    pub fn finish(self) -> CscMatrix {
        CscMatrix {
            nrows: self.nrows,
            col_ptr: self.col_ptr,
            row_idx: self.row_idx,
            values: self.values,
        }
    }
}

impl CscMatrix {
    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(row, value)` entries of column `j`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        range.map(move |i| (self.row_idx[i] as usize, self.values[i]))
    }

    /// Dot product of column `j` with a dense vector.
    #[inline]
    pub fn col_dot(&self, j: usize, v: &[f64]) -> f64 {
        debug_assert_eq!(v.len(), self.nrows);
        let mut acc = 0.0;
        for i in self.col_ptr[j]..self.col_ptr[j + 1] {
            acc += self.values[i] * v[self.row_idx[i] as usize];
        }
        acc
    }

    /// Scatter `scale * column j` into a dense vector: `out += scale·A_j`.
    #[inline]
    pub fn col_axpy(&self, j: usize, scale: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.nrows);
        for i in self.col_ptr[j]..self.col_ptr[j + 1] {
            out[self.row_idx[i] as usize] += scale * self.values[i];
        }
    }

    /// Dense mat-vec `y = A x` (for tests and diagnostics).
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols());
        let mut y = vec![0.0; self.nrows];
        for j in 0..self.ncols() {
            if x[j] != 0.0 {
                self.col_axpy(j, x[j], &mut y);
            }
        }
        y
    }

    /// Dense transposed mat-vec `y = Aᵀ x`.
    pub fn mul_vec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows);
        (0..self.ncols()).map(|j| self.col_dot(j, x)).collect()
    }

    /// Materialize as a dense row-major `Vec<Vec<f64>>` (tests only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols()]; self.nrows];
        for j in 0..self.ncols() {
            for (r, v) in self.col(j) {
                d[r][j] = v;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut b = CscBuilder::new(3);
        b.push_col(&[(0, 1.0), (2, 4.0)]);
        b.push_col(&[(1, 3.0)]);
        b.push_col(&[(2, 5.0), (0, 2.0)]);
        b.finish()
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn columns_sorted_by_row() {
        let m = sample();
        let col2: Vec<(usize, f64)> = m.col(2).collect();
        assert_eq!(col2, vec![(0, 2.0), (2, 5.0)]);
    }

    #[test]
    fn duplicate_entries_summed() {
        let mut b = CscBuilder::new(2);
        b.push_col(&[(0, 1.0), (0, 2.5), (1, -1.0)]);
        let m = b.finish();
        let col: Vec<(usize, f64)> = m.col(0).collect();
        assert_eq!(col, vec![(0, 3.5), (1, -1.0)]);
    }

    #[test]
    fn zeros_dropped() {
        let mut b = CscBuilder::new(2);
        b.push_col(&[(0, 0.0), (1, 1.0)]);
        b.push_col(&[]);
        let m = b.finish();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.col(1).count(), 0);
    }

    #[test]
    fn matvec_roundtrip() {
        let m = sample();
        let y = m.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
        let yt = m.mul_vec_transpose(&[1.0, 1.0, 1.0]);
        assert_eq!(yt, vec![5.0, 3.0, 7.0]);
    }

    #[test]
    fn col_dot_and_axpy() {
        let m = sample();
        assert_eq!(m.col_dot(0, &[1.0, 10.0, 100.0]), 401.0);
        let mut out = vec![0.0; 3];
        m.col_axpy(0, 2.0, &mut out);
        assert_eq!(out, vec![2.0, 0.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_row_panics() {
        let mut b = CscBuilder::new(2);
        b.push_col(&[(2, 1.0)]);
    }
}
