//! Property tests: the revised simplex (primal and dual paths) against the
//! dense tableau oracle on randomized LPs, plus duality invariants (on the
//! deterministic `geoind-testkit` harness; failures print a per-case seed).

use geoind_lp::model::{Model, Op, Sense, SolveVia};
use geoind_lp::tableau::solve_dense;
use geoind_lp::LpError;
use geoind_rng::{Rng, SeededRng};
use geoind_testkit::gens::{bool_any, Gen};
use geoind_testkit::{check, ensure, Config};

/// A randomized LP that is feasible by construction: we pick a witness
/// point `x0 ≥ 0` first and derive compatible right-hand sides.
#[derive(Debug, Clone)]
struct RandomLp {
    costs: Vec<f64>,
    rows: Vec<(Vec<f64>, Op, f64)>,
}

/// Generator for [`RandomLp`]: 2–5 variables, 1–6 rows. Shrinks by
/// dropping trailing rows (the witness keeps every prefix feasible).
struct RandomLpGen;

impl Gen for RandomLpGen {
    type Value = RandomLp;

    fn generate(&self, rng: &mut SeededRng) -> RandomLp {
        let n = rng.gen_range(2..=5usize);
        let m = rng.gen_range(1..=6usize);
        let costs: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let witness: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..4.0)).collect();
        let rows = (0..m)
            .map(|_| {
                let row: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
                let op = match rng.gen_range(0..3usize) {
                    0 => Op::Le,
                    1 => Op::Ge,
                    _ => Op::Eq,
                };
                let slack = rng.gen_range(0.0..3.0);
                let ax: f64 = row.iter().zip(&witness).map(|(a, x)| a * x).sum();
                let rhs = match op {
                    Op::Le => ax + slack,
                    Op::Ge => ax - slack,
                    Op::Eq => ax,
                };
                (row, op, rhs)
            })
            .collect();
        RandomLp { costs, rows }
    }

    fn shrink(&self, v: &RandomLp) -> Vec<RandomLp> {
        if v.rows.len() > 1 {
            let mut w = v.clone();
            w.rows.pop();
            vec![w]
        } else {
            Vec::new()
        }
    }
}

fn build_model(lp: &RandomLp, sense: Sense) -> Model {
    let mut m = Model::new(sense);
    let vars: Vec<usize> = lp.costs.iter().map(|&c| m.add_var(c)).collect();
    for (coefs, op, rhs) in &lp.rows {
        let entries: Vec<(usize, f64)> = vars.iter().zip(coefs).map(|(&v, &c)| (v, c)).collect();
        m.add_row(&entries, *op, *rhs);
    }
    m
}

/// Revised simplex (primal path) agrees with the tableau oracle.
#[test]
fn primal_matches_oracle() {
    check(
        "primal_matches_oracle",
        Config::cases(300),
        &(RandomLpGen, bool_any()),
        |(lp, maximize)| {
            let sense = if *maximize {
                Sense::Maximize
            } else {
                Sense::Minimize
            };
            let model = build_model(lp, sense);
            let oracle = solve_dense(sense, &lp.costs, &lp.rows);
            let ours = model.solve(SolveVia::Primal);
            match (oracle, ours) {
                (Ok((obj_o, _)), Ok(sol)) => {
                    ensure!(
                        (obj_o - sol.objective).abs() < 1e-6 * (1.0 + obj_o.abs()),
                        "objective mismatch: oracle {obj_o}, ours {}",
                        sol.objective
                    );
                    ensure!(sol.residual < 1e-6);
                }
                (Err(LpError::Unbounded), Err(LpError::Unbounded)) => {}
                // These LPs are feasible by construction; anything else is a bug.
                (o, u) => ensure!(false, "status mismatch: oracle {o:?}, ours {u:?}"),
            }
            Ok(())
        },
    );
}

/// Dual path agrees with primal path (objective AND variable values at
/// non-degenerate instances — we check objective which is always unique).
#[test]
fn dual_path_matches_primal_path() {
    check(
        "dual_path_matches_primal_path",
        Config::cases(300),
        &(RandomLpGen, bool_any()),
        |(lp, maximize)| {
            let sense = if *maximize {
                Sense::Maximize
            } else {
                Sense::Minimize
            };
            let model = build_model(lp, sense);
            let p = model.solve(SolveVia::Primal);
            let d = model.solve(SolveVia::Dual);
            match (p, d) {
                (Ok(ps), Ok(ds)) => {
                    ensure!(
                        (ps.objective - ds.objective).abs() < 1e-6 * (1.0 + ps.objective.abs()),
                        "objective mismatch: primal {} dual {}",
                        ps.objective,
                        ds.objective
                    );
                    // The dual-path primal values must be feasible for the model.
                    for (coefs, op, rhs) in &lp.rows {
                        let ax: f64 = coefs.iter().zip(&ds.values).map(|(a, x)| a * x).sum();
                        match op {
                            Op::Le => ensure!(ax <= rhs + 1e-6, "Le violated: {ax} > {rhs}"),
                            Op::Ge => ensure!(ax >= rhs - 1e-6, "Ge violated: {ax} < {rhs}"),
                            Op::Eq => {
                                ensure!((ax - rhs).abs() < 1e-6, "Eq violated: {ax} != {rhs}")
                            }
                        }
                    }
                    for &v in &ds.values {
                        ensure!(v >= -1e-7, "negative primal value {v} from dual path");
                    }
                }
                (Err(LpError::Unbounded), Err(e)) => {
                    // Unbounded primal surfaces as an error through the dual too.
                    ensure!(matches!(e, LpError::Unbounded | LpError::Infeasible));
                }
                (p, d) => ensure!(false, "status mismatch: primal {p:?}, dual {d:?}"),
            }
            Ok(())
        },
    );
}

/// Devex pricing reaches the same optimum as Dantzig.
#[test]
fn devex_matches_dantzig() {
    check(
        "devex_matches_dantzig",
        Config::cases(300),
        &(RandomLpGen, bool_any()),
        |(lp, maximize)| {
            use geoind_lp::simplex::{Pricing, SimplexOptions};
            let sense = if *maximize {
                Sense::Maximize
            } else {
                Sense::Minimize
            };
            let model = build_model(lp, sense);
            let dantzig = model.solve(SolveVia::Primal);
            let devex = model.solve_with(
                SolveVia::Primal,
                SimplexOptions {
                    pricing: Pricing::Devex,
                    ..SimplexOptions::default()
                },
            );
            match (dantzig, devex) {
                (Ok(a), Ok(b)) => {
                    ensure!(
                        (a.objective - b.objective).abs() < 1e-6 * (1.0 + a.objective.abs()),
                        "objective mismatch: dantzig {} devex {}",
                        a.objective,
                        b.objective
                    );
                    ensure!(b.residual < 1e-6);
                }
                (Err(LpError::Unbounded), Err(LpError::Unbounded)) => {}
                (a, b) => ensure!(false, "status mismatch: dantzig {a:?}, devex {b:?}"),
            }
            Ok(())
        },
    );
}

/// Presolve + solve agrees with the direct solve.
#[test]
fn presolve_is_transparent() {
    check(
        "presolve_is_transparent",
        Config::cases(300),
        &(RandomLpGen, bool_any()),
        |(lp, maximize)| {
            use geoind_lp::presolve::presolve_and_solve;
            use geoind_lp::simplex::SimplexOptions;
            let sense = if *maximize {
                Sense::Maximize
            } else {
                Sense::Minimize
            };
            let model = build_model(lp, sense);
            let direct = model.solve(SolveVia::Primal);
            let pre = presolve_and_solve(&model, SolveVia::Primal, SimplexOptions::default());
            match (direct, pre) {
                (Ok(d), Ok(p)) => {
                    ensure!(
                        (d.objective - p.objective).abs() < 1e-6 * (1.0 + d.objective.abs()),
                        "objective mismatch: direct {} presolved {}",
                        d.objective,
                        p.objective
                    );
                    // The presolved solution must be feasible for the original.
                    for (coefs, op, rhs) in &lp.rows {
                        let ax: f64 = coefs.iter().zip(&p.values).map(|(a, x)| a * x).sum();
                        match op {
                            Op::Le => ensure!(ax <= rhs + 1e-6),
                            Op::Ge => ensure!(ax >= rhs - 1e-6),
                            Op::Eq => ensure!((ax - rhs).abs() < 1e-6),
                        }
                    }
                }
                (Err(LpError::Unbounded), Err(LpError::Unbounded)) => {}
                (d, p) => ensure!(false, "status mismatch: direct {d:?}, presolved {p:?}"),
            }
            Ok(())
        },
    );
}

/// Strong duality and sign conventions of the returned duals.
#[test]
fn duality_invariants() {
    check(
        "duality_invariants",
        Config::cases(300),
        &RandomLpGen,
        |lp| {
            let model = build_model(lp, Sense::Minimize);
            if let Ok(sol) = model.solve(SolveVia::Primal) {
                // objective == y'b
                let yb: f64 = sol
                    .duals
                    .iter()
                    .zip(&lp.rows)
                    .map(|(y, (_, _, b))| y * b)
                    .sum();
                ensure!(
                    (yb - sol.objective).abs() < 1e-6 * (1.0 + sol.objective.abs()),
                    "y'b={yb} obj={}",
                    sol.objective
                );
                // Reduced costs are >= 0 for a minimization at optimum.
                for j in 0..lp.costs.len() {
                    let ya: f64 = sol
                        .duals
                        .iter()
                        .zip(&lp.rows)
                        .map(|(y, (coefs, _, _))| y * coefs[j])
                        .sum();
                    ensure!(lp.costs[j] - ya > -1e-6, "negative reduced cost at var {j}");
                }
                // Dual sign conventions: Ge rows have y >= 0, Le rows y <= 0.
                for (i, (_, op, _)) in lp.rows.iter().enumerate() {
                    match op {
                        Op::Ge => ensure!(sol.duals[i] >= -1e-7),
                        Op::Le => ensure!(sol.duals[i] <= 1e-7),
                        Op::Eq => {}
                    }
                }
            }
            Ok(())
        },
    );
}
