//! Property tests: the revised simplex (primal and dual paths) against the
//! dense tableau oracle on randomized LPs, plus duality invariants.

use geoind_lp::model::{Model, Op, Sense, SolveVia};
use geoind_lp::tableau::solve_dense;
use geoind_lp::LpError;
use proptest::prelude::*;

/// A randomized LP that is feasible by construction: we pick a witness
/// point `x0 ≥ 0` first and derive compatible right-hand sides.
#[derive(Debug, Clone)]
struct RandomLp {
    costs: Vec<f64>,
    rows: Vec<(Vec<f64>, Op, f64)>,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![Just(Op::Le), Just(Op::Ge), Just(Op::Eq)]
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (2usize..=5, 1usize..=6).prop_flat_map(|(n, m)| {
        let costs = prop::collection::vec(-5.0..5.0f64, n);
        let coefs = prop::collection::vec(prop::collection::vec(-3.0..3.0f64, n), m);
        let witness = prop::collection::vec(0.0..4.0f64, n);
        let ops = prop::collection::vec(op_strategy(), m);
        let slacks = prop::collection::vec(0.0..3.0f64, m);
        (costs, coefs, witness, ops, slacks).prop_map(|(costs, coefs, witness, ops, slacks)| {
            let rows = coefs
                .into_iter()
                .zip(ops)
                .zip(slacks)
                .map(|((row, op), slack)| {
                    let ax: f64 = row.iter().zip(&witness).map(|(a, x)| a * x).sum();
                    let rhs = match op {
                        Op::Le => ax + slack,
                        Op::Ge => ax - slack,
                        Op::Eq => ax,
                    };
                    (row, op, rhs)
                })
                .collect();
            RandomLp { costs, rows }
        })
    })
}

fn build_model(lp: &RandomLp, sense: Sense) -> Model {
    let mut m = Model::new(sense);
    let vars: Vec<usize> = lp.costs.iter().map(|&c| m.add_var(c)).collect();
    for (coefs, op, rhs) in &lp.rows {
        let entries: Vec<(usize, f64)> =
            vars.iter().zip(coefs).map(|(&v, &c)| (v, c)).collect();
        m.add_row(&entries, *op, *rhs);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Revised simplex (primal path) agrees with the tableau oracle.
    #[test]
    fn primal_matches_oracle(lp in random_lp(), maximize in any::<bool>()) {
        let sense = if maximize { Sense::Maximize } else { Sense::Minimize };
        let model = build_model(&lp, sense);
        let oracle = solve_dense(sense, &lp.costs, &lp.rows);
        let ours = model.solve(SolveVia::Primal);
        match (oracle, ours) {
            (Ok((obj_o, _)), Ok(sol)) => {
                prop_assert!((obj_o - sol.objective).abs() < 1e-6 * (1.0 + obj_o.abs()),
                    "objective mismatch: oracle {obj_o}, ours {}", sol.objective);
                prop_assert!(sol.residual < 1e-6);
            }
            (Err(LpError::Unbounded), Err(LpError::Unbounded)) => {}
            // These LPs are feasible by construction; anything else is a bug.
            (o, u) => prop_assert!(false, "status mismatch: oracle {o:?}, ours {u:?}"),
        }
    }

    /// Dual path agrees with primal path (objective AND variable values at
    /// non-degenerate instances — we check objective which is always unique).
    #[test]
    fn dual_path_matches_primal_path(lp in random_lp(), maximize in any::<bool>()) {
        let sense = if maximize { Sense::Maximize } else { Sense::Minimize };
        let model = build_model(&lp, sense);
        let p = model.solve(SolveVia::Primal);
        let d = model.solve(SolveVia::Dual);
        match (p, d) {
            (Ok(ps), Ok(ds)) => {
                prop_assert!((ps.objective - ds.objective).abs() < 1e-6 * (1.0 + ps.objective.abs()),
                    "objective mismatch: primal {} dual {}", ps.objective, ds.objective);
                // The dual-path primal values must be feasible for the model.
                for (coefs, op, rhs) in &lp.rows {
                    let ax: f64 = coefs.iter().zip(&ds.values).map(|(a, x)| a * x).sum();
                    match op {
                        Op::Le => prop_assert!(ax <= rhs + 1e-6, "Le violated: {ax} > {rhs}"),
                        Op::Ge => prop_assert!(ax >= rhs - 1e-6, "Ge violated: {ax} < {rhs}"),
                        Op::Eq => prop_assert!((ax - rhs).abs() < 1e-6, "Eq violated: {ax} != {rhs}"),
                    }
                }
                for &v in &ds.values {
                    prop_assert!(v >= -1e-7, "negative primal value {v} from dual path");
                }
            }
            (Err(LpError::Unbounded), Err(e)) => {
                // Unbounded primal surfaces as an error through the dual too.
                prop_assert!(matches!(e, LpError::Unbounded | LpError::Infeasible));
            }
            (p, d) => prop_assert!(false, "status mismatch: primal {p:?}, dual {d:?}"),
        }
    }

    /// Devex pricing reaches the same optimum as Dantzig.
    #[test]
    fn devex_matches_dantzig(lp in random_lp(), maximize in any::<bool>()) {
        use geoind_lp::simplex::{Pricing, SimplexOptions};
        let sense = if maximize { Sense::Maximize } else { Sense::Minimize };
        let model = build_model(&lp, sense);
        let dantzig = model.solve(SolveVia::Primal);
        let devex = model.solve_with(
            SolveVia::Primal,
            SimplexOptions { pricing: Pricing::Devex, ..SimplexOptions::default() },
        );
        match (dantzig, devex) {
            (Ok(a), Ok(b)) => {
                prop_assert!((a.objective - b.objective).abs() < 1e-6 * (1.0 + a.objective.abs()),
                    "objective mismatch: dantzig {} devex {}", a.objective, b.objective);
                prop_assert!(b.residual < 1e-6);
            }
            (Err(LpError::Unbounded), Err(LpError::Unbounded)) => {}
            (a, b) => prop_assert!(false, "status mismatch: dantzig {a:?}, devex {b:?}"),
        }
    }

    /// Presolve + solve agrees with the direct solve.
    #[test]
    fn presolve_is_transparent(lp in random_lp(), maximize in any::<bool>()) {
        use geoind_lp::presolve::presolve_and_solve;
        use geoind_lp::simplex::SimplexOptions;
        let sense = if maximize { Sense::Maximize } else { Sense::Minimize };
        let model = build_model(&lp, sense);
        let direct = model.solve(SolveVia::Primal);
        let pre = presolve_and_solve(&model, SolveVia::Primal, SimplexOptions::default());
        match (direct, pre) {
            (Ok(d), Ok(p)) => {
                prop_assert!((d.objective - p.objective).abs() < 1e-6 * (1.0 + d.objective.abs()),
                    "objective mismatch: direct {} presolved {}", d.objective, p.objective);
                // The presolved solution must be feasible for the original.
                for (coefs, op, rhs) in &lp.rows {
                    let ax: f64 = coefs.iter().zip(&p.values).map(|(a, x)| a * x).sum();
                    match op {
                        Op::Le => prop_assert!(ax <= rhs + 1e-6),
                        Op::Ge => prop_assert!(ax >= rhs - 1e-6),
                        Op::Eq => prop_assert!((ax - rhs).abs() < 1e-6),
                    }
                }
            }
            (Err(LpError::Unbounded), Err(LpError::Unbounded)) => {}
            (d, p) => prop_assert!(false, "status mismatch: direct {d:?}, presolved {p:?}"),
        }
    }

    /// Strong duality and sign conventions of the returned duals.
    #[test]
    fn duality_invariants(lp in random_lp()) {
        let model = build_model(&lp, Sense::Minimize);
        if let Ok(sol) = model.solve(SolveVia::Primal) {
            // objective == y'b
            let yb: f64 = sol.duals.iter().zip(&lp.rows).map(|(y, (_, _, b))| y * b).sum();
            prop_assert!((yb - sol.objective).abs() < 1e-6 * (1.0 + sol.objective.abs()),
                "y'b={yb} obj={}", sol.objective);
            // Reduced costs are >= 0 for a minimization at optimum.
            for j in 0..lp.costs.len() {
                let ya: f64 = sol.duals.iter().zip(&lp.rows)
                    .map(|(y, (coefs, _, _))| y * coefs[j]).sum();
                prop_assert!(lp.costs[j] - ya > -1e-6,
                    "negative reduced cost at var {j}");
            }
            // Dual sign conventions: Ge rows have y >= 0, Le rows y <= 0.
            for (i, (_, op, _)) in lp.rows.iter().enumerate() {
                match op {
                    Op::Ge => prop_assert!(sol.duals[i] >= -1e-7),
                    Op::Le => prop_assert!(sol.duals[i] <= 1e-7),
                    Op::Eq => {}
                }
            }
        }
    }
}
